type t =
  | Undefined
  | Null
  | Bool of bool
  | Int of int
  | Double of float
  | Str of string
  | Obj of obj
  | Arr of arr
  | Closure of closure
  | Native_fun of string

and obj = { props : (string, t) Hashtbl.t; mutable key_order : string list; oid : int }

and arr = { mutable elems : t array; mutable length : int; aid : int }

and closure = { fid : int; env : t ref array; cid : int }

type tag =
  | Tag_undefined
  | Tag_null
  | Tag_bool
  | Tag_int
  | Tag_double
  | Tag_string
  | Tag_object
  | Tag_array
  | Tag_function

let tag_of = function
  | Undefined -> Tag_undefined
  | Null -> Tag_null
  | Bool _ -> Tag_bool
  | Int _ -> Tag_int
  | Double _ -> Tag_double
  | Str _ -> Tag_string
  | Obj _ -> Tag_object
  | Arr _ -> Tag_array
  | Closure _ | Native_fun _ -> Tag_function

let tag_to_string = function
  | Tag_undefined -> "Undefined"
  | Tag_null -> "Null"
  | Tag_bool -> "Bool"
  | Tag_int -> "Int32"
  | Tag_double -> "Double"
  | Tag_string -> "String"
  | Tag_object -> "Object"
  | Tag_array -> "Array"
  | Tag_function -> "Function"

let int32_min = -0x8000_0000
let int32_max = 0x7FFF_FFFF

let norm_num f =
  if Float.is_integer f
     && f >= float_of_int int32_min
     && f <= float_of_int int32_max
     && not (f = 0.0 && 1.0 /. f < 0.0)
  then Int (int_of_float f)
  else Double f

let of_int n = if n >= int32_min && n <= int32_max then Int n else Double (float_of_int n)

(* Identity ids are only ever compared for equality (strict_eq, GVN value
   numbers), never for order, so an atomic counter shared by all domains
   keeps identity sound under a parallel harness without affecting any
   observable output. *)
let id_counter = Atomic.make 0

let next_id () = Atomic.fetch_and_add id_counter 1 + 1

let fresh_id = next_id

let new_obj () = { props = Hashtbl.create 8; key_order = []; oid = next_id () }

(* Property writes preserve insertion order (JS enumeration order for
   string keys), which for-in relies on. [key_order] is kept reversed. *)
let obj_set o k v =
  if not (Hashtbl.mem o.props k) then o.key_order <- k :: o.key_order;
  Hashtbl.replace o.props k v

let obj_keys o = List.rev o.key_order

let obj_with_props fields =
  let o = new_obj () in
  List.iter (fun (k, v) -> obj_set o k v) fields;
  o

let new_arr n = { elems = Array.make (max n 1) Undefined; length = n; aid = next_id () }

let arr_of_list vs =
  let elems = Array.of_list vs in
  let n = Array.length elems in
  { elems = (if n = 0 then Array.make 1 Undefined else elems); length = n; aid = next_id () }

let arr_get a i = if i >= 0 && i < a.length then a.elems.(i) else Undefined

let arr_set a i v =
  if i < 0 then ()
  else begin
    if i >= Array.length a.elems then begin
      let grown = Array.make (max (i + 1) (2 * Array.length a.elems)) Undefined in
      Array.blit a.elems 0 grown 0 a.length;
      a.elems <- grown
    end;
    if i >= a.length then a.length <- i + 1;
    a.elems.(i) <- v
  end

let same_value a b =
  match (a, b) with
  | Undefined, Undefined | Null, Null -> true
  | Bool x, Bool y -> x = y
  | Int x, Int y -> x = y
  | Double x, Double y -> Int64.bits_of_float x = Int64.bits_of_float y
  | Str x, Str y -> String.equal x y
  | Obj x, Obj y -> x.oid = y.oid
  | Arr x, Arr y -> x.aid = y.aid
  | Closure x, Closure y -> x.cid = y.cid
  | Native_fun x, Native_fun y -> String.equal x y
  | ( ( Undefined | Null | Bool _ | Int _ | Double _ | Str _ | Obj _ | Arr _ | Closure _
      | Native_fun _ ),
      _ ) ->
    false

let same_args xs ys =
  Array.length xs = Array.length ys
  && (let ok = ref true in
      Array.iteri (fun i x -> if not (same_value x ys.(i)) then ok := false) xs;
      !ok)

let typeof = function
  | Undefined -> "undefined"
  | Null | Obj _ | Arr _ -> "object"
  | Bool _ -> "boolean"
  | Int _ | Double _ -> "number"
  | Str _ -> "string"
  | Closure _ | Native_fun _ -> "function"

let float_to_js_string f =
  if Float.is_nan f then "NaN"
  else if f = Float.infinity then "Infinity"
  else if f = Float.neg_infinity then "-Infinity"
  else if Float.is_integer f && Float.abs f < 1e21 then
    (* Integral doubles print without a decimal point, as in JS. *)
    Printf.sprintf "%.0f" f
  else
    let s = Printf.sprintf "%.12g" f in
    s

let rec to_display_string v =
  match v with
  | Undefined -> "undefined"
  | Null -> "null"
  | Bool b -> string_of_bool b
  | Int n -> string_of_int n
  | Double f -> float_to_js_string f
  | Str s -> s
  | Obj _ -> "[object Object]"
  | Arr a ->
    let parts = List.init a.length (fun i -> to_display_string (arr_get a i)) in
    String.concat "," parts
  | Closure _ -> "[function]"
  | Native_fun name -> Printf.sprintf "[native %s]" name

let pp fmt v =
  match v with
  | Str s -> Format.fprintf fmt "%S" s
  | _ -> Format.pp_print_string fmt (to_display_string v)
