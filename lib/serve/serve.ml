(* The multi-tenant VM service: N isolates over the task pool, each a
   single-server FIFO queue of web-session requests against warm engines.

   Everything runs on the deterministic model-cycle clock. Each isolate's
   virtual clock advances by exactly the cycles its engines charge (plus
   backoff waits), arrivals are drawn from the request PRNG, and requests
   are sharded statically (rq_id mod isolates) — so every isolate is an
   independent serial simulation and [run]'s summary is byte-identical at
   any --jobs. *)

open Support

(* ------------------------------------------------------------------ *)
(* Counter names                                                       *)
(* ------------------------------------------------------------------ *)

module Skey = struct
  let requests = "serve.requests"
  let ok = "serve.ok"
  let shed = "serve.shed"
  let deadline_queue = "serve.deadline.queue"
  let deadline_exec = "serve.deadline.exec"
  let fault = "serve.fault.exhausted"
  let retries = "serve.retries"
  let recycles = "serve.recycles"
  let escapes = "serve.escapes"
  let degraded = "serve.degraded"
end

(* ------------------------------------------------------------------ *)
(* Configuration and the request stream                                *)
(* ------------------------------------------------------------------ *)

(* Observability switches. All off by default, and the run's summary and
   counters are byte-identical whether they are on or off: tracing,
   metrics and the flight recorder read the simulation, never steer it. *)
type obs = {
  obs_trace : bool;  (* request-scoped spans + bg-compile flow stitches *)
  obs_metrics : bool;  (* the per-isolate Metrics registry *)
  obs_metrics_every : int;  (* snapshot period in model cycles; 0 = none *)
  obs_flight : bool;  (* per-isolate flight recorder *)
  obs_flight_capacity : int;
  obs_flight_max_dumps : int;
}

let obs_off =
  {
    obs_trace = false;
    obs_metrics = false;
    obs_metrics_every = 0;
    obs_flight = false;
    obs_flight_capacity = 64;
    obs_flight_max_dumps = 4;
  }

type config = {
  isolates : int;
  requests : int;
  tenants : int;
  capacity : int;
  queue_deadline : int;
  deadline : int;
  retries : int;
  backoff : int;
  overload_depth : int;
  mean_gap : int;
  crash_fraction : float;
  seed : int;
  chaos : int option;
  engine : Engine.config;
  obs : obs;
}

let default_config ?(isolates = 2) ?(requests = 80) ?(tenants = 6) ?(capacity = 0)
    ?(queue_deadline = 0) ?(deadline = 0) ?(retries = 2) ?(backoff = 2_000)
    ?(overload_depth = 0) ?(mean_gap = 30_000) ?(crash_fraction = 0.0) ?(seed = 1)
    ?chaos ?(engine = Engine.default_config ()) ?(obs = obs_off) () =
  {
    isolates = max 1 isolates;
    requests = max 0 requests;
    tenants = max 1 tenants;
    capacity = max 0 capacity;
    queue_deadline = max 0 queue_deadline;
    deadline = max 0 deadline;
    retries = max 0 retries;
    backoff = max 0 backoff;
    overload_depth = max 0 overload_depth;
    mean_gap = max 0 mean_gap;
    crash_fraction;
    seed;
    chaos;
    engine;
    obs;
  }

type request = { rq_id : int; rq_tenant : int; rq_arrival : int; rq_poison : bool }

let sample_requests cfg =
  let prng = Prng.create ((cfg.seed * 7) + 3) in
  let t = ref 0 in
  List.init cfg.requests (fun i ->
      let gap = if cfg.mean_gap = 0 then 0 else Prng.int prng ((2 * cfg.mean_gap) + 1) in
      t := !t + gap;
      let tenant = Prng.int prng cfg.tenants in
      let poison = Prng.float prng 1.0 < cfg.crash_fraction in
      { rq_id = i; rq_tenant = tenant; rq_arrival = !t; rq_poison = poison })

let requests_for cfg reqs ~isolate =
  List.filter (fun r -> r.rq_id mod cfg.isolates = isolate) reqs

(* A request that hits a VM-level bug: MiniJS cannot read a property off
   null, so every attempt raises through the engine and exercises the
   supervisor's recycle/retry/backoff path. *)
let poison_source = "var broken = null;\nvar boom = broken.f;\nprint(boom);\n"
let poison_key = -1

let tenant_source cfg tenant =
  if tenant = poison_key then poison_source
  else Web.request_source ~seed:((cfg.seed * 131) + tenant)

(* ------------------------------------------------------------------ *)
(* Outcomes and per-request records                                    *)
(* ------------------------------------------------------------------ *)

type outcome = Served | Shed | Deadline_queue | Deadline_exec | Fault

let outcome_to_string = function
  | Served -> "ok"
  | Shed -> "shed"
  | Deadline_queue -> "deadline-queue"
  | Deadline_exec -> "deadline-exec"
  | Fault -> "fault"

type record = {
  rr_id : int;
  rr_tenant : int;
  rr_isolate : int;
  rr_outcome : outcome;
  rr_arrival : int;
  rr_finish : int;
  rr_latency : int;
  rr_attempts : int;
  rr_warm : bool;
  rr_compile : int;
}

(* ------------------------------------------------------------------ *)
(* One isolate                                                         *)
(* ------------------------------------------------------------------ *)

type iso = {
  iso_id : int;
  iso_cfg : config;
  iso_ecfg : Engine.config;
  engines : (int, Engine.t) Hashtbl.t;  (* tenant key -> warm engine *)
  programs : (int, Bytecode.Program.t) Hashtbl.t;  (* survives recycles *)
  counters : Telemetry.Counters.t;
  mutable vclock : int;  (* when this isolate next falls idle *)
  mutable pending : int list;  (* finish times of admitted requests *)
  mutable records : record list;  (* reversed *)
  (* Observability (all [None]/empty with obs off — and then nothing below
     ever allocates or runs). *)
  tracer : Profile.Tracer.t option;  (* serve-level request/queue spans *)
  spans : Telemetry.span list ref;  (* emission order, reversed *)
  mx : Metrics.t option;
  snaps : (int * string) list ref;  (* (cycle, snapshot json), reversed *)
  mutable last_snap : int;  (* last boundary snapshotted *)
  flight : Flight.t option;
}

let make_iso cfg ~isolate =
  let spans = ref [] in
  {
    iso_id = isolate;
    iso_cfg = cfg;
    iso_ecfg = { cfg.engine with Engine.deadline = cfg.deadline };
    engines = Hashtbl.create 8;
    programs = Hashtbl.create 8;
    counters = Telemetry.Counters.create ~nfuncs:1 ();
    vclock = 0;
    pending = [];
    records = [];
    tracer =
      (if cfg.obs.obs_trace then
         Some (Profile.Tracer.create ~emit:(fun s -> spans := s :: !spans))
       else None);
    spans;
    mx = (if cfg.obs.obs_metrics then Some (Metrics.create ()) else None);
    snaps = ref [];
    last_snap = 0;
    flight =
      (if cfg.obs.obs_flight then
         Some
           (Flight.create ~capacity:cfg.obs.obs_flight_capacity
              ~max_dumps:cfg.obs.obs_flight_max_dumps ())
       else None);
  }

let bump ?n iso name = Telemetry.Counters.bump_global ?n iso.counters name

(* Fold every engine's counter registry into the isolate accumulator.
   Called just before the engines are dropped (recycle) and once at the
   end of the run, so each engine's rows are absorbed exactly once. *)
let absorb iso =
  Hashtbl.iter
    (fun _ eng ->
      List.iter
        (fun (name, v) -> if v <> 0 then bump ~n:v iso name)
        (Telemetry.Counters.rows (Telemetry.counters (Engine.telemetry eng))))
    iso.engines

(* Recycle the isolate: drain background compile queues, absorb
   telemetry, then drop every warm engine. Heap state a crashing request
   may have corrupted is gone; the next attempt (and the next request of
   every tenant) starts from a cold, known-good engine — and no queued
   artifact compiled against the old heap can land in the new one (the
   drain cancels every in-flight request before the engine is dropped).
   Compiled bytecode programs are pure and survive. *)
let recycle iso =
  bump iso Skey.recycles;
  Hashtbl.iter (fun _ eng -> ignore (Engine.drain_bg eng)) iso.engines;
  absorb iso;
  Hashtbl.reset iso.engines

let get_engine iso key =
  match Hashtbl.find_opt iso.engines key with
  | Some eng -> eng
  | None ->
    let program =
      match Hashtbl.find_opt iso.programs key with
      | Some p -> p
      | None ->
        let p = Bytecode.Compile.program_of_source (tenant_source iso.iso_cfg key) in
        Hashtbl.add iso.programs key p;
        p
    in
    let eng = Engine.make iso.iso_ecfg program in
    (* The flight recorder rides the engine's event stream; timestamps are
       that engine's own model clock (the ring's seq numbers give the
       global order). Attaching a sink never charges cycles, so the
       simulation is unchanged. *)
    (match iso.flight with
    | Some fl ->
      Telemetry.attach (Engine.telemetry eng)
        (Flight.sink fl ~clock:(fun () -> Engine.clock eng))
    | None -> ());
    Hashtbl.add iso.engines key eng;
    eng

(* Execute one admitted request: up to [1 + retries] attempts with capped
   exponential backoff between them (the quarantine shape: base * 2^n).
   Returns the classification plus the cycles the request held the server
   (execution + backoff waits), its compile-cycle share and warmth. *)
let run_attempts iso rq ~degraded =
  let cfg = iso.iso_cfg in
  let busy = ref 0 in
  let compile = ref 0 in
  let attempts = ref 0 in
  let tenant_key = if rq.rq_poison then poison_key else rq.rq_tenant in
  let warm = Hashtbl.mem iso.engines tenant_key in
  let rec go k =
    attempts := k;
    if cfg.deadline > 0 && Faults.fire Faults.Serve_deadline then begin
      (* Injected attempt-deadline expiry: charge the full budget and fail
         exactly like a genuine expiry. Deadline misses are never retried —
         re-running a request that cannot fit its budget only burns more
         of the queue's time. *)
      busy := !busy + cfg.deadline;
      bump iso Skey.deadline_exec;
      Deadline_exec
    end
    else begin
      let eng = get_engine iso tenant_key in
      Engine.set_degrade eng degraded;
      let c0 = Engine.clock eng in
      let _, _, k0 = Engine.cycle_split eng in
      let charge () =
        busy := !busy + (Engine.clock eng - c0);
        let _, _, k1 = Engine.cycle_split eng in
        compile := !compile + (k1 - k0)
      in
      Runtime.Builtins.reset_random 20130223;
      match Engine.run eng with
      | _report ->
        charge ();
        bump iso Skey.ok;
        Served
      | exception Engine.Deadline_exceeded _ ->
        (* The engine already emitted Deadline_hit and bumped its own
           [deadlines] counter (absorbed later); a clean failure, the
           engine stays warm. *)
        charge ();
        bump iso Skey.deadline_exec;
        Deadline_exec
      | exception _escaped ->
        (* The supervisor: any other escaping exception — a MiniJS-level
           error, an injected fault, a genuine bug — is contained here. *)
        charge ();
        recycle iso;
        if k <= cfg.retries then begin
          bump iso Skey.retries;
          busy := !busy + (cfg.backoff * (1 lsl min (k - 1) 16));
          go (k + 1)
        end
        else begin
          bump iso Skey.fault;
          Fault
        end
    end
  in
  let outcome = go 1 in
  (outcome, !busy, !compile, !attempts, warm)

let record iso rq ~outcome ~finish ~attempts ~warm ~compile =
  iso.records <-
    {
      rr_id = rq.rq_id;
      rr_tenant = rq.rq_tenant;
      rr_isolate = iso.iso_id;
      rr_outcome = outcome;
      rr_arrival = rq.rq_arrival;
      rr_finish = finish;
      rr_latency = finish - rq.rq_arrival;
      rr_attempts = attempts;
      rr_warm = warm;
      rr_compile = compile;
    }
    :: iso.records

(* The observation tap, called once per classified request. Everything
   here is read-only with respect to the simulation: spans, metrics and
   flight triggers are derived from values the un-observed run computes
   identically. [start] is when the request left the queue ([finish] for
   requests that never executed, making the queue-wait span cover the
   whole wait). *)
let observe_request iso rq ~outcome ~depth ~start ~finish ~attempts =
  (match iso.tracer with
  | Some tr ->
    let fname = Printf.sprintf "rq%d" rq.rq_id in
    if start > rq.rq_arrival then
      Profile.Tracer.complete tr ~name:"queue-wait" ~cat:"serve" ~fid:rq.rq_id ~fname
        ~start:rq.rq_arrival ~dur:(start - rq.rq_arrival);
    Profile.Tracer.complete tr
      ~args:
        [
          ("outcome", "\"" ^ outcome_to_string outcome ^ "\"");
          ("attempts", string_of_int attempts);
          ("tenant", string_of_int rq.rq_tenant);
        ]
      ~name:"request" ~cat:"serve" ~fid:rq.rq_id ~fname ~start:rq.rq_arrival
      ~dur:(finish - rq.rq_arrival)
  | None -> ());
  (match iso.mx with
  | Some mx ->
    let i = string_of_int iso.iso_id in
    let pol = Policy.kind_to_string iso.iso_cfg.engine.Engine.policy in
    let o = outcome_to_string outcome in
    Metrics.inc mx "serve.requests" [ ("isolate", i); ("policy", pol); ("outcome", o) ];
    Metrics.inc mx "serve.tenant.requests"
      [ ("isolate", i); ("tenant", string_of_int rq.rq_tenant); ("outcome", o) ];
    if outcome = Served then
      Metrics.observe mx "serve.latency.cycles"
        [ ("isolate", i); ("policy", pol) ]
        (finish - rq.rq_arrival);
    Metrics.max_gauge mx "serve.queue.depth" [ ("isolate", i) ] depth;
    Metrics.tick_rate mx "serve.arrivals" [ ("isolate", i) ] ~window:1_000_000
      ~now:rq.rq_arrival;
    let every = iso.iso_cfg.obs.obs_metrics_every in
    if every > 0 then begin
      (* Periodic snapshots on the isolate's own clock: one per crossed
         period boundary (time jumps whole requests at once, so emit the
         latest boundary reached rather than one line per multiple). *)
      let boundary = finish / every * every in
      if boundary > iso.last_snap then begin
        iso.last_snap <- boundary;
        iso.snaps := (boundary, Metrics.snapshot_json ~cycle:boundary mx) :: !(iso.snaps)
      end
    end
  | None -> ());
  match iso.flight with
  | Some fl ->
    let detail = Printf.sprintf "rq%d tenant=%d" rq.rq_id rq.rq_tenant in
    (match outcome with
    | Fault -> Flight.trigger fl ~trigger:"fault" ~detail ~at:finish
    | Deadline_queue | Deadline_exec ->
      Flight.trigger fl ~trigger:"deadline" ~detail ~at:finish
    | Served | Shed -> ())
  | None -> ()

let process_request iso rq =
  let cfg = iso.iso_cfg in
  let a = rq.rq_arrival in
  bump iso Skey.requests;
  (* Admission: queue depth is the number of admitted requests still
     unfinished at this arrival. *)
  iso.pending <- List.filter (fun f -> f > a) iso.pending;
  let depth = List.length iso.pending in
  let forced_shed = Faults.fire Faults.Serve_admit in
  if forced_shed || (cfg.capacity > 0 && depth >= cfg.capacity) then begin
    bump iso Skey.shed;
    record iso rq ~outcome:Shed ~finish:a ~attempts:0 ~warm:false ~compile:0;
    observe_request iso rq ~outcome:Shed ~depth ~start:a ~finish:a ~attempts:0
  end
  else begin
    (* Over the high-water mark but under capacity: degrade — shed
       specialization before shedding requests. *)
    let degraded = cfg.overload_depth > 0 && depth >= cfg.overload_depth in
    if degraded then bump iso Skey.degraded;
    let start = max iso.vclock a in
    if cfg.queue_deadline > 0 && start - a > cfg.queue_deadline then begin
      (* The request would expire while queued: it never executes and
         leaves the queue when its wait budget runs out. *)
      let finish = a + cfg.queue_deadline in
      bump iso Skey.deadline_queue;
      iso.pending <- finish :: iso.pending;
      record iso rq ~outcome:Deadline_queue ~finish ~attempts:0 ~warm:false ~compile:0;
      observe_request iso rq ~outcome:Deadline_queue ~depth ~start:finish ~finish
        ~attempts:0
    end
    else begin
      let outcome, busy, compile, attempts, warm = run_attempts iso rq ~degraded in
      let finish = start + busy in
      iso.vclock <- finish;
      iso.pending <- finish :: iso.pending;
      record iso rq ~outcome ~finish ~attempts ~warm ~compile;
      observe_request iso rq ~outcome ~depth ~start ~finish ~attempts
    end
  end

let guard_request iso rq =
  let plan_installed () =
    match iso.iso_cfg.chaos with
    | None -> process_request iso rq
    | Some c ->
      (* A fresh per-request fault schedule: admission, every attempt and
         the engine's own injection points all draw from it. *)
      Faults.with_plan
        (Faults.sample ((c * 1_000_003) + rq.rq_id))
        (fun () -> process_request iso rq)
  in
  let supervised () =
    try plan_installed ()
    with _escaped ->
      (* The outer belt: nothing may escape an isolate. A request that
         trips this is a service-layer bug (counted, asserted zero by the
         smoke gate) but still yields a classified record. *)
      bump iso Skey.escapes;
      recycle iso;
      let finish = max iso.vclock rq.rq_arrival in
      record iso rq ~outcome:Fault ~finish ~attempts:0 ~warm:false ~compile:0;
      observe_request iso rq ~outcome:Fault ~depth:0 ~start:finish ~finish ~attempts:0
  in
  (* The request-scoped identity every span, flow stitch and flight entry
     under this dynamic extent stamps itself with. Installed only when an
     observer wants it; either way nothing below reads it unless one does. *)
  if Option.is_some iso.tracer || Option.is_some iso.flight then
    Telemetry.with_trace
      (Some
         {
           Telemetry.tc_trace = rq.rq_id + 1;
           tc_request = rq.rq_id;
           tc_tenant = rq.rq_tenant;
           tc_isolate = iso.iso_id;
         })
      supervised
  else supervised ()

(* Everything one isolate's run produced. The observability fields are
   empty with obs off. *)
type iso_result = {
  ir_isolate : int;
  ir_records : record list;  (* request order *)
  ir_rows : (string * int) list;
  ir_spans : Telemetry.span list;  (* emission order *)
  ir_metrics : Metrics.t option;
  ir_snaps : (int * string) list;  (* (cycle, json), cycle order *)
  ir_flights : Flight.dump list;  (* trigger order *)
}

let run_isolate_full cfg ~isolate reqs =
  let iso = make_iso cfg ~isolate in
  let body () =
    Runtime.Builtins.with_print_hook ignore (fun () ->
        Faults.with_fired_hook
          (fun point ->
            bump iso (Telemetry.Key.faults_fired (Faults.point_to_string point)))
          (fun () -> List.iter (guard_request iso) reqs))
  in
  (match iso.tracer with
  | Some _ ->
    (* Engines created during the run must pick the accumulator up as a
       default span sink (an engine only builds its tracer when the hub
       has a span sink at construction); the serve-level tracer shares the
       same accumulator, so one stream carries both layers. *)
    Telemetry.with_default_span_sinks [ (fun s -> iso.spans := s :: !(iso.spans)) ] body
  | None -> body ());
  (* Close the flows of background compiles the run ended before
     harvesting — counter-silent, so a traced summary equals an untraced
     one. Must precede [absorb]: the engines are dropped right after. *)
  if Option.is_some iso.tracer then
    Hashtbl.iter (fun _ eng -> Engine.flush_flows eng) iso.engines;
  absorb iso;
  (* One closing snapshot so the metrics file always ends with the final
     state, whatever the period. *)
  (match iso.mx with
  | Some mx when cfg.obs.obs_metrics_every > 0 && iso.vclock > iso.last_snap ->
    iso.snaps := (iso.vclock, Metrics.snapshot_json ~cycle:iso.vclock mx) :: !(iso.snaps)
  | _ -> ());
  {
    ir_isolate = isolate;
    ir_records = List.rev iso.records;
    ir_rows = Telemetry.Counters.rows iso.counters;
    ir_spans = List.rev !(iso.spans);
    ir_metrics = iso.mx;
    ir_snaps = List.rev !(iso.snaps);
    ir_flights = (match iso.flight with Some fl -> Flight.dumps fl | None -> []);
  }

let run_isolate cfg ~isolate reqs =
  let r = run_isolate_full cfg ~isolate reqs in
  (r.ir_isolate, r.ir_records, r.ir_rows)

(* ------------------------------------------------------------------ *)
(* Summary                                                             *)
(* ------------------------------------------------------------------ *)

type summary = {
  sm_requests : int;
  sm_ok : int;
  sm_shed : int;
  sm_deadline_queue : int;
  sm_deadline_exec : int;
  sm_fault : int;
  sm_p50 : int;
  sm_p95 : int;
  sm_p99 : int;
  sm_makespan : int;
  sm_throughput : float;
  sm_cold : int;
  sm_warm : int;
  sm_tail : int;
  sm_tail_cold : int;
  sm_tail_compile_pct : float;
  sm_counters : (string * int) list;
  sm_records : record list;
}

let counter s name =
  Option.value (List.assoc_opt name s.sm_counters) ~default:0

let summarize results =
  let records =
    List.concat_map (fun (_, rs, _) -> rs) results
    |> List.sort (fun a b -> compare a.rr_id b.rr_id)
  in
  let rows =
    let tbl = Hashtbl.create 64 in
    List.iter
      (fun (_, _, rows) ->
        List.iter
          (fun (name, v) ->
            if v <> 0 then
              Hashtbl.replace tbl name
                (v + Option.value (Hashtbl.find_opt tbl name) ~default:0))
          rows)
      results;
    Hashtbl.fold (fun name v acc -> (name, v) :: acc) tbl []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  let count o = List.length (List.filter (fun r -> r.rr_outcome = o) records) in
  let served = List.filter (fun r -> r.rr_outcome = Served) records in
  (* Nearest-rank percentiles over the served latencies, via the exact
     histogram (bit-identical to sorting the array and indexing
     ceil(p*n)-1 — the histogram-exactness tests pin this equivalence). *)
  let lat = Metrics.Hist.create () in
  List.iter (fun r -> Metrics.Hist.observe lat r.rr_latency) served;
  let p50 = Metrics.Hist.quantile lat 0.50 in
  let p95 = Metrics.Hist.quantile lat 0.95 in
  let p99 = Metrics.Hist.quantile lat 0.99 in
  let makespan = List.fold_left (fun m r -> max m r.rr_finish) 1 records in
  let tail = List.filter (fun r -> r.rr_latency >= p95) served in
  let tail_lat = List.fold_left (fun acc r -> acc + r.rr_latency) 0 tail in
  let tail_compile = List.fold_left (fun acc r -> acc + r.rr_compile) 0 tail in
  {
    sm_requests = List.length records;
    sm_ok = List.length served;
    sm_shed = count Shed;
    sm_deadline_queue = count Deadline_queue;
    sm_deadline_exec = count Deadline_exec;
    sm_fault = count Fault;
    sm_p50 = p50;
    sm_p95 = p95;
    sm_p99 = p99;
    sm_makespan = makespan;
    sm_throughput = float_of_int (List.length served) *. 1e6 /. float_of_int makespan;
    sm_cold = List.length (List.filter (fun r -> not r.rr_warm) served);
    sm_warm = List.length (List.filter (fun r -> r.rr_warm) served);
    sm_tail = List.length tail;
    sm_tail_cold = List.length (List.filter (fun r -> not r.rr_warm) tail);
    sm_tail_compile_pct =
      (if tail_lat = 0 then 0.0
       else 100.0 *. float_of_int tail_compile /. float_of_int tail_lat);
    sm_counters = rows;
    sm_records = records;
  }

(* The run's merged observability output (everything empty with obs off). *)
type obs_result = {
  or_spans : Telemetry.span list;  (* isolate-major, emission order *)
  or_metrics : Metrics.t option;  (* per-isolate registries, merged *)
  or_snapshots : (int * int * string) list;  (* (cycle, isolate, json) *)
  or_flights : (int * Flight.dump) list;  (* (isolate, dump) *)
}

let run_full cfg =
  let reqs = sample_requests cfg in
  let isolates = List.init cfg.isolates Fun.id in
  let results =
    Pool.map (Pool.default ())
      (fun i -> run_isolate_full cfg ~isolate:i (requests_for cfg reqs ~isolate:i))
      isolates
  in
  let summary =
    summarize (List.map (fun r -> (r.ir_isolate, r.ir_records, r.ir_rows)) results)
  in
  let metrics =
    if cfg.obs.obs_metrics then begin
      (* Merging in isolate order is deterministic, and because the
         histograms are lossless the merge equals having observed every
         isolate serially into one registry. *)
      let m = Metrics.create () in
      List.iter (fun r -> Option.iter (fun src -> Metrics.merge_into ~into:m src) r.ir_metrics) results;
      Some m
    end
    else None
  in
  let snapshots =
    List.concat_map
      (fun r -> List.map (fun (c, j) -> (c, r.ir_isolate, j)) r.ir_snaps)
      results
    |> List.sort compare
  in
  let obs =
    {
      or_spans = List.concat_map (fun r -> r.ir_spans) results;
      or_metrics = metrics;
      or_snapshots = snapshots;
      or_flights =
        List.concat_map (fun r -> List.map (fun d -> (r.ir_isolate, d)) r.ir_flights) results;
    }
  in
  (summary, obs)

let run cfg = fst (run_full cfg)

let error_rate s =
  if s.sm_requests = 0 then 0.0
  else 100.0 *. float_of_int (s.sm_requests - s.sm_ok) /. float_of_int s.sm_requests

let print_summary ?(counters = true) oc cfg s =
  Printf.fprintf oc
    "serve: requests=%d isolates=%d tenants=%d policy=%s capacity=%d overload=%d \
     deadline=%d queue-deadline=%d retries=%d backoff=%d crash=%.2f chaos=%s seed=%d\n"
    cfg.requests cfg.isolates cfg.tenants
    (Policy.kind_to_string cfg.engine.Engine.policy)
    cfg.capacity cfg.overload_depth cfg.deadline cfg.queue_deadline cfg.retries
    cfg.backoff cfg.crash_fraction
    (match cfg.chaos with None -> "none" | Some c -> string_of_int c)
    cfg.seed;
  Printf.fprintf oc
    "outcomes: ok=%d shed=%d deadline-queue=%d deadline-exec=%d fault=%d \
     error-rate=%.1f%%\n"
    s.sm_ok s.sm_shed s.sm_deadline_queue s.sm_deadline_exec s.sm_fault
    (error_rate s);
  Printf.fprintf oc
    "latency (cycles): p50=%d p95=%d p99=%d makespan=%d throughput=%.2f ok/Mcycle\n"
    s.sm_p50 s.sm_p95 s.sm_p99 s.sm_makespan s.sm_throughput;
  Printf.fprintf oc "warmth: cold=%d warm=%d tail>=p95: n=%d cold=%d compile-share=%.1f%%\n"
    s.sm_cold s.sm_warm s.sm_tail s.sm_tail_cold s.sm_tail_compile_pct;
  if counters then
    List.iter (fun (name, v) -> Printf.fprintf oc "  %-36s %d\n" name v) s.sm_counters

(* ------------------------------------------------------------------ *)
(* The smoke configuration (CI gate)                                   *)
(* ------------------------------------------------------------------ *)

(* Forced overload: arrivals far faster than service, a bounded queue,
   tight deadlines, crashing tenants and a chaos schedule — every
   degradation path must fire and still nothing may escape a supervisor. *)
let smoke_config () =
  default_config ~isolates:2 ~requests:120 ~tenants:5 ~capacity:4
    ~queue_deadline:150_000 ~deadline:120_000 ~retries:2 ~backoff:2_000
    ~overload_depth:2 ~mean_gap:12_000 ~crash_fraction:0.08 ~seed:20130223
    ~chaos:7
    ~engine:(Engine.default_config ~policy:Policy.Polyvariant ~cache_size:4 ())
    ()

(* The smoke gate's assertions; [Error] lists every violated invariant. *)
let smoke_check s =
  let problems = ref [] in
  let need cond msg = if not cond then problems := msg :: !problems in
  need
    (s.sm_ok + s.sm_shed + s.sm_deadline_queue + s.sm_deadline_exec + s.sm_fault
    = s.sm_requests)
    "outcome classification does not partition the requests";
  need (counter s Skey.escapes = 0) "a supervisor escape was counted";
  need (s.sm_shed > 0) "forced overload shed nothing";
  need (s.sm_deadline_queue + s.sm_deadline_exec > 0) "no deadline ever expired";
  need (counter s Skey.recycles > 0) "poison requests never recycled an isolate";
  need (counter s Skey.degraded > 0) "overload never entered degrade mode";
  need (s.sm_ok > 0) "no request succeeded at all";
  match !problems with [] -> Ok () | ps -> Error (List.rev ps)
