(** Multi-tenant VM service: isolates, deadlines, supervision and graceful
    degradation under overload.

    The service is a deterministic discrete-event simulation on the model-
    cycle clock. A run samples a stream of web-session requests (one small
    {!Web.request_source} program per tenant), shards them statically over
    [isolates] single-server FIFO queues ([rq_id mod isolates]) and plays
    each isolate's queue serially on its own warm-{!Engine.t} cache; the
    isolates themselves fan out over the {!Pool} default pool. An
    isolate's virtual clock advances by exactly the model cycles its
    engines charge (plus retry backoff), so latencies, counters and the
    printed summary are byte-identical at any [--jobs].

    Per request, in order:

    - {b Admission}: the queue depth (admitted requests unfinished at
      arrival) is compared against [capacity]; at or over it — or when
      the injected {!Faults.Serve_admit} point fires — the request is
      shed without touching an engine.
    - {b Degrade}: depth at or over [overload_depth] admits the request
      in degrade mode ({!Engine.set_degrade}): specialization is shed
      before requests are.
    - {b Queue deadline}: a request whose wait would exceed
      [queue_deadline] expires in the queue and never executes.
    - {b Execution}: up to [1 + retries] attempts. The engine runs with a
      cooperative [deadline] budget; {!Engine.Deadline_exceeded} is a
      clean, never-retried failure (the engine stays warm). Any other
      escaping exception hits the {e supervisor}: the isolate's engines
      are recycled (telemetry absorbed first, programs kept) and the
      attempt is retried after capped exponential backoff
      ([backoff * 2^n], the quarantine shape) until retries exhaust. *)

(** Service counter names (accumulated per isolate alongside the rows
    absorbed from every engine and the [faults.fired.*] counters). *)
module Skey : sig
  val requests : string
  val ok : string
  val shed : string
  val deadline_queue : string
  val deadline_exec : string
  val fault : string
  (** retry-exhausted supervised faults *)

  val retries : string
  val recycles : string

  val escapes : string
  (** exceptions past the supervisor — must stay 0 *)

  val degraded : string
  (** requests admitted in degrade mode *)
end

(** Observability switches, all off by default. The contract: the summary,
    the counters and every printed line of a run are byte-identical
    whether these are on or off — tracing, metrics and the flight
    recorder observe the simulation, they never steer it. *)
type obs = {
  obs_trace : bool;
      (** request-scoped spans: per-request [request]/[queue-wait] spans,
          the engines' lifecycle spans on per-request Perfetto lanes, and
          flow stitches tying a background compile's enqueue to its
          install *)
  obs_metrics : bool;  (** the per-isolate {!Metrics} registry *)
  obs_metrics_every : int;
      (** JSON snapshot period in model cycles (0 = none); a closing
          snapshot at the isolate's final clock is always added *)
  obs_flight : bool;  (** per-isolate {!Flight} recorder on every engine *)
  obs_flight_capacity : int;  (** ring entries per isolate *)
  obs_flight_max_dumps : int;  (** post-mortems kept; overflow counted *)
}

val obs_off : obs

type config = {
  isolates : int;
  requests : int;
  tenants : int;
  capacity : int;  (** run-queue bound per isolate; 0 = unbounded *)
  queue_deadline : int;  (** max cycles queued before expiry; 0 = none *)
  deadline : int;  (** per-attempt engine budget; 0 = none *)
  retries : int;  (** extra attempts after a supervised fault *)
  backoff : int;  (** base retry backoff, model cycles *)
  overload_depth : int;  (** queue depth that flips degrade mode; 0 = never *)
  mean_gap : int;  (** mean inter-arrival gap, model cycles *)
  crash_fraction : float;  (** fraction of requests running the poison program *)
  seed : int;
  chaos : int option;  (** [Some seed]: a fresh fault plan per request *)
  engine : Engine.config;  (** [deadline] is overlaid on this *)
  obs : obs;
}

val default_config :
  ?isolates:int ->
  ?requests:int ->
  ?tenants:int ->
  ?capacity:int ->
  ?queue_deadline:int ->
  ?deadline:int ->
  ?retries:int ->
  ?backoff:int ->
  ?overload_depth:int ->
  ?mean_gap:int ->
  ?crash_fraction:float ->
  ?seed:int ->
  ?chaos:int ->
  ?engine:Engine.config ->
  ?obs:obs ->
  unit ->
  config
(** Defaults: 2 isolates, 80 requests, 6 tenants, unbounded queue, no
    deadlines, 2 retries, 2000-cycle base backoff, no degrade threshold,
    30000-cycle mean gap, no poison, no chaos, default engine,
    observability off. *)

type request = { rq_id : int; rq_tenant : int; rq_arrival : int; rq_poison : bool }

val sample_requests : config -> request list
(** The run's request stream: arrivals from cumulative PRNG gaps (mean
    [mean_gap]), tenants uniform, poison by [crash_fraction].
    Deterministic in [seed]. *)

val requests_for : config -> request list -> isolate:int -> request list
(** The static shard one isolate serves. *)

val tenant_source : config -> int -> string
(** The MiniJS session program a tenant's requests run (tenant [-1] is
    the internal poison program). *)

(** Request classification — a partition: every request gets exactly one. *)
type outcome = Served | Shed | Deadline_queue | Deadline_exec | Fault

val outcome_to_string : outcome -> string

type record = {
  rr_id : int;
  rr_tenant : int;
  rr_isolate : int;
  rr_outcome : outcome;
  rr_arrival : int;
  rr_finish : int;
  rr_latency : int;  (** finish - arrival, model cycles *)
  rr_attempts : int;  (** 0 when the request never executed *)
  rr_warm : bool;  (** the tenant's engine existed at first attempt *)
  rr_compile : int;  (** compile cycles charged during the request *)
}

type iso_result = {
  ir_isolate : int;
  ir_records : record list;  (** request order *)
  ir_rows : (string * int) list;  (** counter rows, name-sorted *)
  ir_spans : Telemetry.span list;  (** emission order; [] with trace off *)
  ir_metrics : Metrics.t option;  (** the isolate's registry *)
  ir_snaps : (int * string) list;  (** (cycle, snapshot json), cycle order *)
  ir_flights : Flight.dump list;  (** post-mortems, trigger order *)
}
(** Everything one isolate produced; observability fields empty with obs
    off. *)

val run_isolate_full : config -> isolate:int -> request list -> iso_result
(** Play one isolate's queue serially. Installs its own print hook,
    fired-fault hook, per-request chaos plans and (with obs on) span
    sinks / trace contexts / flight sinks; absorbs every engine's
    counters — and, when tracing, closes still-open background-compile
    flows — before returning. *)

val run_isolate :
  config -> isolate:int -> request list -> int * record list * (string * int) list
(** {!run_isolate_full} projected to
    [(isolate, records in request order, counter rows)] (the interaction
    tests' entry point). *)

type summary = {
  sm_requests : int;
  sm_ok : int;
  sm_shed : int;
  sm_deadline_queue : int;
  sm_deadline_exec : int;
  sm_fault : int;
  sm_p50 : int;  (** served-latency percentiles, nearest-rank, cycles *)
  sm_p95 : int;
  sm_p99 : int;
  sm_makespan : int;  (** latest finish time *)
  sm_throughput : float;  (** served requests per million cycles *)
  sm_cold : int;  (** served requests whose engine was cold *)
  sm_warm : int;
  sm_tail : int;  (** served requests with latency >= p95 *)
  sm_tail_cold : int;  (** ... of which cold: the warm/cold tail split *)
  sm_tail_compile_pct : float;  (** compile cycles' share of tail latency *)
  sm_counters : (string * int) list;  (** merged rows, name-sorted *)
  sm_records : record list;  (** every request, id-sorted *)
}

val counter : summary -> string -> int
(** A merged counter row's value (0 when absent). *)

type obs_result = {
  or_spans : Telemetry.span list;
      (** all isolates' spans, isolate-major then emission order — ready
          for a Chrome trace-event file; requests stitch into lanes by
          trace id *)
  or_metrics : Metrics.t option;
      (** the per-isolate registries merged (losslessly) in isolate
          order *)
  or_snapshots : (int * int * string) list;
      (** periodic snapshots, [(cycle, isolate, json)]-sorted *)
  or_flights : (int * Flight.dump) list;  (** [(isolate, dump)] *)
}
(** A run's merged observability output; everything empty with obs off. *)

val run_full : config -> summary * obs_result
(** The whole service run: sample, shard, play every isolate on the
    default pool, merge — summary plus the observability output.
    Byte-identical at any [--jobs], including every [obs_result] field. *)

val run : config -> summary
(** [fst (run_full cfg)]. *)

val error_rate : summary -> float
(** Non-served percentage of all requests. *)

val print_summary : ?counters:bool -> out_channel -> config -> summary -> unit
(** The deterministic report the CI gate diffs across [--jobs] values. *)

val smoke_config : unit -> config
(** The CI smoke scenario: arrivals far faster than service against a
    bounded queue with tight deadlines, poison tenants and a chaos
    schedule — forced overload where every degradation path must fire. *)

val smoke_check : summary -> (unit, string list) result
(** The smoke gate's invariants: outcomes partition the request count,
    zero supervisor escapes, nonzero shed / deadline / recycle / degrade
    counters, and at least one served request. *)
