(* Tiny string-search helpers the stdlib lacks (naive scan; the inputs here
   are short lines, never bulk data). *)

let find_substring_from s sub start =
  let n = String.length s and m = String.length sub in
  if m = 0 then Some start
  else begin
    let found = ref None in
    let i = ref start in
    while !found = None && !i + m <= n do
      if String.sub s !i m = sub then found := Some !i else incr i
    done;
    !found
  end

let find_substring s sub = find_substring_from s sub 0

let contains_substring s sub = find_substring s sub <> None
