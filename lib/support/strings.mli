(** Substring search helpers (naive scan — meant for short lines, not bulk
    text). *)

val find_substring_from : string -> string -> int -> int option
(** [find_substring_from s sub start] is the index of the first occurrence
    of [sub] in [s] at or after [start], if any. The empty [sub] matches at
    [start]. *)

val find_substring : string -> string -> int option

val contains_substring : string -> string -> bool
