type 'a t = 'a Domain.DLS.key

let make init = Domain.DLS.new_key init
let get k = Domain.DLS.get k
let set k v = Domain.DLS.set k v

let with_value k v f =
  let saved = get k in
  set k v;
  Fun.protect ~finally:(fun () -> set k saved) f
