(** Domain-local slots for the VM's ambient context.

    Every piece of cross-run mutable context in the tree — the print hook,
    [Math.random]'s generator, pipeline check mode, telemetry default
    sinks, fault plans, diagnostic hooks — lives in one of these slots
    instead of a global [ref], so engine runs fanned out over a
    {!Parallel.Pool} cannot observe (or clobber) each other's state. Each
    domain lazily gets its own value from the initializer; nothing is
    inherited from the spawning domain, which is what makes pool tasks
    self-contained: a task that needs a hook installs it itself, usually
    through the owning module's [with_...] combinator. *)

type 'a t

val make : (unit -> 'a) -> 'a t
(** A new slot; [init] produces the per-domain initial value on first use. *)

val get : 'a t -> 'a
(** This domain's current value. *)

val set : 'a t -> 'a -> unit
(** Replace this domain's value; other domains are unaffected. *)

val with_value : 'a t -> 'a -> (unit -> 'b) -> 'b
(** Run with this domain's value temporarily replaced, restoring on exit
    (also on exception). *)
