(* The flight recorder: a bounded ring of trace-stamped telemetry events
   with triggered post-mortem dumps. Pure model-clock data in, so dumps
   are byte-identical at any --jobs; capture count is bounded (and the
   overflow counted) so chaos runs cannot balloon the output. *)

type entry = {
  fe_seq : int;
  fe_ts : int;
  fe_trace : int;
  fe_request : int;
  fe_tenant : int;
  fe_event : Telemetry.event;
}

type dump = {
  d_trigger : string;
  d_detail : string;
  d_at : int;
  d_dropped : int;
  d_entries : entry list;
}

type t = {
  buf : entry option array;
  mutable next : int;  (* next write position *)
  mutable total : int;  (* entries ever recorded *)
  max_dumps : int;
  mutable dumps : dump list;  (* reversed *)
  mutable ndumps : int;
  mutable suppressed : int;
}

let create ?(capacity = 64) ?(max_dumps = 4) () =
  if capacity <= 0 then invalid_arg "Flight.create: capacity must be positive";
  if max_dumps <= 0 then invalid_arg "Flight.create: max_dumps must be positive";
  {
    buf = Array.make capacity None;
    next = 0;
    total = 0;
    max_dumps;
    dumps = [];
    ndumps = 0;
    suppressed = 0;
  }

let recorded t = t.total
let dropped t = max 0 (t.total - Array.length t.buf)
let suppressed t = t.suppressed
let dumps t = List.rev t.dumps

(* The ring at this instant, oldest first. *)
let entries t =
  let cap = Array.length t.buf in
  let n = min t.total cap in
  let start = if t.total <= cap then 0 else t.next in
  List.init n (fun i ->
      match t.buf.((start + i) mod cap) with Some e -> e | None -> assert false)

let trigger t ~trigger ~detail ~at =
  if t.ndumps >= t.max_dumps then t.suppressed <- t.suppressed + 1
  else begin
    t.ndumps <- t.ndumps + 1;
    t.dumps <-
      {
        d_trigger = trigger;
        d_detail = detail;
        d_at = at;
        d_dropped = dropped t;
        d_entries = entries t;
      }
      :: t.dumps
  end

let record t ~ts ev =
  let trace, request, tenant =
    match Telemetry.current_trace () with
    | Some c -> (c.Telemetry.tc_trace, c.Telemetry.tc_request, c.Telemetry.tc_tenant)
    | None -> (0, -1, -1)
  in
  t.total <- t.total + 1;
  t.buf.(t.next) <-
    Some
      {
        fe_seq = t.total;
        fe_ts = ts;
        fe_trace = trace;
        fe_request = request;
        fe_tenant = tenant;
        fe_event = ev;
      };
  t.next <- (t.next + 1) mod Array.length t.buf;
  (* Policy emergencies self-trigger: the post-mortem must capture the
     window *leading up to* the quarantine, which only this instant has. *)
  match ev with
  | Telemetry.Quarantine { fname; reason; _ } ->
    let kind =
      match reason with Telemetry.Deopt_storm -> "deopt-storm" | _ -> "quarantine"
    in
    trigger t ~trigger:kind ~detail:fname ~at:ts
  | _ -> ()

let sink t ~clock ev = record t ~ts:(clock ()) ev

let jstr s = "\"" ^ Telemetry.json_escape s ^ "\""

let entry_json e =
  Printf.sprintf "{\"seq\":%d,\"ts\":%d,\"trace\":%d,\"request\":%d,\"tenant\":%d,\"event\":%s}"
    e.fe_seq e.fe_ts e.fe_trace e.fe_request e.fe_tenant
    (Telemetry.to_json e.fe_event)

let dump_jsonl d =
  Printf.sprintf
    "{\"schema\":%s,\"trigger\":%s,\"detail\":%s,\"at\":%d,\"dropped\":%d,\"entries\":%d}"
    (jstr "vs-flight/1") (jstr d.d_trigger) (jstr d.d_detail) d.d_at d.d_dropped
    (List.length d.d_entries)
  :: List.map entry_json d.d_entries

let render d =
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    (Printf.sprintf "flight[%s] at=%d detail=%s dropped=%d entries=%d\n" d.d_trigger d.d_at
       d.d_detail d.d_dropped (List.length d.d_entries));
  List.iter
    (fun e ->
      let who =
        if e.fe_trace = 0 then ""
        else Printf.sprintf " trace=%d rq=%d tenant=%d" e.fe_trace e.fe_request e.fe_tenant
      in
      Buffer.add_string buf
        (Printf.sprintf "  #%d @%d%s %s\n" e.fe_seq e.fe_ts who
           (Telemetry.to_string e.fe_event)))
    d.d_entries;
  Buffer.contents buf
