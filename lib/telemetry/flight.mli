(** The flight recorder: a bounded ring of recent telemetry events that
    turns a failure into a post-mortem.

    One recorder per isolate (or per standalone engine): a
    {!Telemetry.sink} stamps every event with the emitting engine's
    model-cycle clock and the current {!Telemetry.trace_ctx}, so the last
    [capacity] policy decisions — probes, widenings, promotions,
    quarantines, cancels, deadline hits, with their inputs — are always
    in memory. A {b trigger} (an injected fault, a deadline expiry, a
    deopt storm, a quarantine, or an explicit request) snapshots the ring
    into a {!dump}; dumps render as JSONL ({!dump_jsonl}) and as a human
    report ({!render}).

    Determinism contract: entries carry only model-clock data, capture
    order is the (serial, per-isolate) emission order, and the number of
    captured dumps is bounded by [max_dumps] with the overflow counted in
    {!suppressed} — so a chaos run's flight-recorder output is
    byte-identical at any [--jobs]. Ring overwrites are counted (the
    dropped total rides along in each dump header), never silent. *)

type entry = {
  fe_seq : int;  (** monotone per recorder, from 1 *)
  fe_ts : int;  (** emitting engine's model-cycle clock *)
  fe_trace : int;  (** trace id at emission; 0 = no request context *)
  fe_request : int;  (** request id; -1 = none *)
  fe_tenant : int;  (** tenant; -1 = none *)
  fe_event : Telemetry.event;
}

type dump = {
  d_trigger : string;
      (** ["fault"], ["deadline"], ["deopt-storm"], ["quarantine"] or
          ["manual"] *)
  d_detail : string;  (** free-form: the request/function that tripped it *)
  d_at : int;  (** model-cycle stamp of the trigger *)
  d_dropped : int;  (** ring overwrites before this dump *)
  d_entries : entry list;  (** the ring at capture time, oldest first *)
}

type t

val create : ?capacity:int -> ?max_dumps:int -> unit -> t
(** Defaults: 64 entries, 4 captured dumps.
    @raise Invalid_argument when either bound is not positive. *)

val record : t -> ts:int -> Telemetry.event -> unit
(** Stamp and buffer one event (reads {!Telemetry.current_trace}).
    [Quarantine] events auto-trigger a dump — ["deopt-storm"] when that
    was the quarantine reason, ["quarantine"] otherwise. *)

val sink : t -> clock:(unit -> int) -> Telemetry.sink
(** [record] as an attachable sink reading [clock ()] per event. *)

val trigger : t -> trigger:string -> detail:string -> at:int -> unit
(** Capture a dump now (the caller-side triggers: supervised faults,
    deadline outcomes, on-demand dumps). Past [max_dumps] the capture is
    dropped and {!suppressed} bumped instead. *)

val dumps : t -> dump list
(** Captured dumps, oldest first. *)

val suppressed : t -> int
val recorded : t -> int
(** Events ever recorded (ring overwrites included). *)

val dropped : t -> int
(** Events overwritten so far. *)

val dump_jsonl : dump -> string list
(** One [vs-flight/1] header object, then one line per entry. *)

val render : dump -> string
(** The human post-mortem: a header line plus one line per entry. *)
