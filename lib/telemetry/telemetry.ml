(* Structured JIT telemetry: every policy decision the engine makes —
   compile, cache probe, specialize, bail out, deoptimize, blacklist, OSR —
   is an [event] delivered to pluggable [sink]s, and every countable
   transition also bumps a named counter in a [Counters.t] registry. The
   engine's report is derived from the registry, so the numbers the paper's
   tables print and the numbers an operator sees on a live trace can never
   disagree.

   Events carry only primitive payloads (ints, strings, bool arrays): this
   module sits below the IRs and the runtime, like [Diag], so any layer can
   emit through it without a dependency cycle. *)

(* ------------------------------------------------------------------ *)
(* Events                                                              *)
(* ------------------------------------------------------------------ *)

type pass_delta = {
  pd_pass : string;
  pd_before : int;  (* MIR instructions entering the pass *)
  pd_after : int;  (* MIR instructions after it ran *)
}

type deopt_reason =
  | Arg_mismatch  (* call missed the specialization cache (§4 deopt) *)
  | Entry_guard  (* specialized binary's entry type barrier failed *)
  | Strike_limit  (* in-body guard failures reached [max_bailouts] *)

type quarantine_reason =
  | Compile_fault  (* a compilation aborted (verifier/diag/injected fault) *)
  | Deopt_storm  (* compile→bailout→recompile oscillation past threshold *)
  | Cache_oom  (* code-cache admission failed *)

type event =
  | Compile_start of {
      fid : int;
      fname : string;
      specialized : bool;
      selective : bool;
      osr : bool;
    }
  | Compile_end of {
      fid : int;
      fname : string;
      specialized : bool;
      selective : bool;
      osr : bool;
      size : int;  (* native instructions produced *)
      cycles : int;  (* model compile cycles charged *)
      passes : pass_delta list;  (* pipeline passes, in execution order *)
    }
  | Cache_hit of {
      fid : int;
      fname : string;
      index : int;  (* position probed in the MRU-first cache list *)
      entries : int;  (* cache entries at probe time *)
    }
  | Cache_miss of { fid : int; fname : string; entries : int }
  | Specialize of {
      fid : int;
      fname : string;
      args : string;  (* display form of the burned-in tuple *)
      mask : bool array option;  (* selective: which positions burn in *)
    }
  | Deopt of { fid : int; fname : string; reason : deopt_reason }
  | Bailout of {
      fid : int;
      fname : string;
      pc : int;  (* bytecode pc interpretation resumes at *)
      native_pc : int;  (* native instruction that failed *)
      reason : string;
      osr_entry : bool;
      strikes : int;  (* in-body strikes against the binary, after this one *)
    }
  | Blacklist of { fid : int; fname : string }
  | Osr_enter of { fid : int; fname : string; pc : int; loop_edges : int }
  | Inline_decision of { fid : int; fname : string; inlined : int }
  | Guard_elided of {
      fid : int;
      fname : string;
      guard : string;  (* "type" | "array" | "bounds" *)
      origin_fid : int;  (* function the guard came from (inlining) *)
      pc : int;  (* bytecode pc of the guarded operation *)
    }
  | Compile_abort of {
      fid : int;
      fname : string;
      specialized : bool;
      osr : bool;
      reason : string;  (* the diagnostic's message (or the injected fault) *)
      cycles : int;  (* wasted compile cycles, still charged *)
    }
  | Quarantine of {
      fid : int;
      fname : string;
      reason : quarantine_reason;
      backoff_calls : int;  (* calls until the next compile attempt; 0 if permanent *)
      permanent : bool;  (* pinned to the interpreter tier *)
    }
  | Cache_evict of {
      fid : int;
      fname : string;  (* owner of the evicted binary *)
      bytes : int;  (* bytes reclaimed *)
      in_use : int;  (* cache bytes in use after the eviction *)
    }
  | Version_widen of {
      fid : int;
      fname : string;
      index : int;  (* the widened version's position (MRU-first) *)
      from_key : string;  (* display form of the key it had *)
      to_key : string;  (* display form of the replacement key *)
      entries : int;  (* cache entries before the widening *)
    }
  | Deadline_hit of {
      fid : int;  (* function whose dispatch observed the expiry *)
      fname : string;
      spent : int;  (* model cycles spent in the run when it tripped *)
      limit : int;  (* the run's cycle budget *)
    }
  | Compile_enqueue of {
      fid : int;
      fname : string;
      kind : string;  (* queued signature flavor: "values" | "selective" | "tags" | "generic" *)
      osr : bool;  (* carries an OSR entry snapshot *)
      ready : int;  (* modeled completion cycle *)
      depth : int;  (* queue occupancy after the enqueue *)
    }
  | Compile_ready of {
      fid : int;
      fname : string;
      size : int;  (* native instructions installed *)
      cycles : int;  (* off-clock compile cycles the artifact cost *)
      wait : int;  (* model cycles from enqueue to harvest *)
    }
  | Compile_cancel of {
      fid : int;
      fname : string;
      reason : string;  (* "overflow" | "degrade" | "recycle" | "install-fault" | "enqueue-fault" *)
    }
  | Osr_entry of {
      fid : int;
      fname : string;
      pc : int;  (* loop head transferred into the finished binary *)
    }

let event_fid = function
  | Compile_start { fid; _ }
  | Compile_end { fid; _ }
  | Cache_hit { fid; _ }
  | Cache_miss { fid; _ }
  | Specialize { fid; _ }
  | Deopt { fid; _ }
  | Bailout { fid; _ }
  | Blacklist { fid; _ }
  | Osr_enter { fid; _ }
  | Inline_decision { fid; _ }
  | Guard_elided { fid; _ }
  | Compile_abort { fid; _ }
  | Quarantine { fid; _ }
  | Cache_evict { fid; _ }
  | Version_widen { fid; _ }
  | Deadline_hit { fid; _ }
  | Compile_enqueue { fid; _ }
  | Compile_ready { fid; _ }
  | Compile_cancel { fid; _ }
  | Osr_entry { fid; _ } -> fid

let event_fname = function
  | Compile_start { fname; _ }
  | Compile_end { fname; _ }
  | Cache_hit { fname; _ }
  | Cache_miss { fname; _ }
  | Specialize { fname; _ }
  | Deopt { fname; _ }
  | Bailout { fname; _ }
  | Blacklist { fname; _ }
  | Osr_enter { fname; _ }
  | Inline_decision { fname; _ }
  | Guard_elided { fname; _ }
  | Compile_abort { fname; _ }
  | Quarantine { fname; _ }
  | Cache_evict { fname; _ }
  | Version_widen { fname; _ }
  | Deadline_hit { fname; _ }
  | Compile_enqueue { fname; _ }
  | Compile_ready { fname; _ }
  | Compile_cancel { fname; _ }
  | Osr_entry { fname; _ } -> fname

let event_kind = function
  | Compile_start _ -> "compile_start"
  | Compile_end _ -> "compile_end"
  | Cache_hit _ -> "cache_hit"
  | Cache_miss _ -> "cache_miss"
  | Specialize _ -> "specialize"
  | Deopt _ -> "deopt"
  | Bailout _ -> "bailout"
  | Blacklist _ -> "blacklist"
  | Osr_enter _ -> "osr_enter"
  | Inline_decision _ -> "inline_decision"
  | Guard_elided _ -> "guard_elided"
  | Compile_abort _ -> "compile_abort"
  | Quarantine _ -> "quarantine"
  | Cache_evict _ -> "cache_evict"
  | Version_widen _ -> "version_widen"
  | Deadline_hit _ -> "deadline_hit"
  | Compile_enqueue _ -> "compile_enqueue"
  | Compile_ready _ -> "compile_ready"
  | Compile_cancel _ -> "compile_cancel"
  | Osr_entry _ -> "osr_entry"

let deopt_reason_to_string = function
  | Arg_mismatch -> "arg_mismatch"
  | Entry_guard -> "entry_guard"
  | Strike_limit -> "strike_limit"

let quarantine_reason_to_string = function
  | Compile_fault -> "compile_fault"
  | Deopt_storm -> "deopt_storm"
  | Cache_oom -> "cache_oom"

let mask_to_string mask =
  String.concat "" (Array.to_list (Array.map (fun b -> if b then "1" else "0") mask))

let flavor ~specialized ~selective ~osr =
  (if specialized then "specialized" else "generic")
  ^ (if selective then " selective" else "")
  ^ if osr then " +OSR" else ""

(* One human-readable line per event, the replacement for the engine's old
   [verbose] printf diagnostics (jsvm --trace). *)
let to_string ev =
  let site = Printf.sprintf "f%d %s" (event_fid ev) (event_fname ev) in
  match ev with
  | Compile_start { specialized; selective; osr; _ } ->
    Printf.sprintf "compile-start %s %s" site (flavor ~specialized ~selective ~osr)
  | Compile_end { specialized; selective; osr; size; cycles; passes; _ } ->
    Printf.sprintf "compile-end   %s %s size=%d cycles=%d passes=[%s]" site
      (flavor ~specialized ~selective ~osr)
      size cycles
      (String.concat " "
         (List.map
            (fun p -> Printf.sprintf "%s:%d->%d" p.pd_pass p.pd_before p.pd_after)
            passes))
  | Cache_hit { index; entries; _ } ->
    Printf.sprintf "cache-hit     %s entry %d of %d" site index entries
  | Cache_miss { entries; _ } ->
    Printf.sprintf "cache-miss    %s (%d cached)" site entries
  | Specialize { args; mask; _ } ->
    Printf.sprintf "specialize    %s args=(%s)%s" site args
      (match mask with
      | Some m -> Printf.sprintf " mask=%s" (mask_to_string m)
      | None -> "")
  | Deopt { reason; _ } ->
    Printf.sprintf "deopt         %s (%s)" site (deopt_reason_to_string reason)
  | Bailout { pc; native_pc; reason; osr_entry; strikes; _ } ->
    Printf.sprintf "bailout       %s at pc %d (native %d): %s%s strikes=%d" site pc
      native_pc reason
      (if osr_entry then " [osr entry]" else "")
      strikes
  | Blacklist _ -> Printf.sprintf "blacklist     %s" site
  | Osr_enter { pc; loop_edges; _ } ->
    Printf.sprintf "osr-enter     %s at pc %d after %d loop edges" site pc loop_edges
  | Inline_decision { inlined; _ } ->
    Printf.sprintf "inline        %s %d call site(s)" site inlined
  | Guard_elided { guard; origin_fid; pc; _ } ->
    Printf.sprintf "guard-elided  %s %s guard from f%d@%d" site guard origin_fid pc
  | Compile_abort { specialized; osr; reason; cycles; _ } ->
    Printf.sprintf "compile-abort %s %s: %s (%d cycles wasted)" site
      (flavor ~specialized ~selective:false ~osr)
      reason cycles
  | Quarantine { reason; backoff_calls; permanent; _ } ->
    if permanent then
      Printf.sprintf "quarantine    %s (%s) pinned to interpreter" site
        (quarantine_reason_to_string reason)
    else
      Printf.sprintf "quarantine    %s (%s) retry after %d calls" site
        (quarantine_reason_to_string reason)
        backoff_calls
  | Cache_evict { bytes; in_use; _ } ->
    Printf.sprintf "cache-evict   %s %d bytes freed (%d in use)" site bytes in_use
  | Version_widen { index; from_key; to_key; entries; _ } ->
    Printf.sprintf "version-widen %s entry %d of %d: %s -> %s" site index entries
      from_key to_key
  | Deadline_hit { spent; limit; _ } ->
    Printf.sprintf "deadline-hit  %s spent %d of %d cycles" site spent limit
  | Compile_enqueue { kind; osr; ready; depth; _ } ->
    Printf.sprintf "bg-enqueue    %s %s%s ready at %d (%d queued)" site kind
      (if osr then " +OSR" else "")
      ready depth
  | Compile_ready { size; cycles; wait; _ } ->
    Printf.sprintf "bg-ready      %s size=%d cycles=%d after %d cycles in flight" site
      size cycles wait
  | Compile_cancel { reason; _ } -> Printf.sprintf "bg-cancel     %s (%s)" site reason
  | Osr_entry { pc; _ } -> Printf.sprintf "bg-osr-entry  %s at pc %d" site pc

(* ------------------------------------------------------------------ *)
(* JSON rendering (hand-rolled; no json dependency in the image)       *)
(* ------------------------------------------------------------------ *)

(* RFC 8259 string escaping: the two mandatory escapes, the five short
   forms (\b \t \n \f \r), and \u00XX for every remaining control char
   (which covers the whole <0x10 range). Everything >= 0x20 passes through
   byte-for-byte. *)
let json_escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\b' -> Buffer.add_string buf "\\b"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\012' -> Buffer.add_string buf "\\f"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* Inverse of [json_escape], for the round-trip test and the trace-JSON
   validator: decodes the escapes [json_escape] emits (including \uXXXX
   for XXXX < 0x100) back to raw bytes. Unknown escapes raise. *)
let json_unescape s =
  let buf = Buffer.create (String.length s) in
  let n = String.length s in
  let hex c =
    match c with
    | '0' .. '9' -> Char.code c - Char.code '0'
    | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
    | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
    | _ -> invalid_arg "Telemetry.json_unescape: bad hex digit"
  in
  let rec go i =
    if i < n then
      match s.[i] with
      | '\\' ->
        if i + 1 >= n then invalid_arg "Telemetry.json_unescape: trailing backslash";
        (match s.[i + 1] with
        | '"' -> Buffer.add_char buf '"'; go (i + 2)
        | '\\' -> Buffer.add_char buf '\\'; go (i + 2)
        | '/' -> Buffer.add_char buf '/'; go (i + 2)
        | 'b' -> Buffer.add_char buf '\b'; go (i + 2)
        | 't' -> Buffer.add_char buf '\t'; go (i + 2)
        | 'n' -> Buffer.add_char buf '\n'; go (i + 2)
        | 'f' -> Buffer.add_char buf '\012'; go (i + 2)
        | 'r' -> Buffer.add_char buf '\r'; go (i + 2)
        | 'u' ->
          if i + 5 >= n then invalid_arg "Telemetry.json_unescape: short \\u escape";
          let code =
            (hex s.[i + 2] lsl 12) lor (hex s.[i + 3] lsl 8) lor (hex s.[i + 4] lsl 4)
            lor hex s.[i + 5]
          in
          if code > 0xff then invalid_arg "Telemetry.json_unescape: non-byte \\u escape";
          Buffer.add_char buf (Char.chr code);
          go (i + 6)
        | c -> invalid_arg (Printf.sprintf "Telemetry.json_unescape: bad escape \\%c" c))
      | c -> Buffer.add_char buf c; go (i + 1)
  in
  go 0;
  Buffer.contents buf

let json_obj fields =
  "{"
  ^ String.concat ","
      (List.map (fun (k, v) -> Printf.sprintf "\"%s\":%s" k v) fields)
  ^ "}"

let jstr s = "\"" ^ json_escape s ^ "\""
let jbool b = if b then "true" else "false"

(* One JSON object per event (a JSONL stream when written line by line).
   Every object carries "ev", "fid" and "fn"; the rest is per-kind. *)
let to_json ev =
  let base = [ ("ev", jstr (event_kind ev)); ("fid", string_of_int (event_fid ev));
               ("fn", jstr (event_fname ev)) ]
  in
  let extra =
    match ev with
    | Compile_start { specialized; selective; osr; _ } ->
      [ ("specialized", jbool specialized); ("selective", jbool selective);
        ("osr", jbool osr) ]
    | Compile_end { specialized; selective; osr; size; cycles; passes; _ } ->
      [ ("specialized", jbool specialized); ("selective", jbool selective);
        ("osr", jbool osr); ("size", string_of_int size);
        ("cycles", string_of_int cycles);
        ( "passes",
          "["
          ^ String.concat ","
              (List.map
                 (fun p ->
                   json_obj
                     [ ("pass", jstr p.pd_pass);
                       ("before", string_of_int p.pd_before);
                       ("after", string_of_int p.pd_after) ])
                 passes)
          ^ "]" ) ]
    | Cache_hit { index; entries; _ } ->
      [ ("index", string_of_int index); ("entries", string_of_int entries) ]
    | Cache_miss { entries; _ } -> [ ("entries", string_of_int entries) ]
    | Specialize { args; mask; _ } ->
      ("args", jstr args)
      :: (match mask with Some m -> [ ("mask", jstr (mask_to_string m)) ] | None -> [])
    | Deopt { reason; _ } -> [ ("reason", jstr (deopt_reason_to_string reason)) ]
    | Bailout { pc; native_pc; reason; osr_entry; strikes; _ } ->
      [ ("pc", string_of_int pc); ("native_pc", string_of_int native_pc);
        ("reason", jstr reason); ("osr_entry", jbool osr_entry);
        ("strikes", string_of_int strikes) ]
    | Blacklist _ -> []
    | Osr_enter { pc; loop_edges; _ } ->
      [ ("pc", string_of_int pc); ("loop_edges", string_of_int loop_edges) ]
    | Inline_decision { inlined; _ } -> [ ("inlined", string_of_int inlined) ]
    | Guard_elided { guard; origin_fid; pc; _ } ->
      [ ("guard", jstr guard); ("origin_fid", string_of_int origin_fid);
        ("pc", string_of_int pc) ]
    | Compile_abort { specialized; osr; reason; cycles; _ } ->
      [ ("specialized", jbool specialized); ("osr", jbool osr);
        ("reason", jstr reason); ("cycles", string_of_int cycles) ]
    | Quarantine { reason; backoff_calls; permanent; _ } ->
      [ ("reason", jstr (quarantine_reason_to_string reason));
        ("backoff_calls", string_of_int backoff_calls);
        ("permanent", jbool permanent) ]
    | Cache_evict { bytes; in_use; _ } ->
      [ ("bytes", string_of_int bytes); ("in_use", string_of_int in_use) ]
    | Version_widen { index; from_key; to_key; entries; _ } ->
      [ ("index", string_of_int index); ("from", jstr from_key);
        ("to", jstr to_key); ("entries", string_of_int entries) ]
    | Deadline_hit { spent; limit; _ } ->
      [ ("spent", string_of_int spent); ("limit", string_of_int limit) ]
    | Compile_enqueue { kind; osr; ready; depth; _ } ->
      [ ("kind", jstr kind); ("osr", jbool osr); ("ready", string_of_int ready);
        ("depth", string_of_int depth) ]
    | Compile_ready { size; cycles; wait; _ } ->
      [ ("size", string_of_int size); ("cycles", string_of_int cycles);
        ("wait", string_of_int wait) ]
    | Compile_cancel { reason; _ } -> [ ("reason", jstr reason) ]
    | Osr_entry { pc; _ } -> [ ("pc", string_of_int pc) ]
  in
  json_obj (base @ extra)

(* ------------------------------------------------------------------ *)
(* Sinks                                                               *)
(* ------------------------------------------------------------------ *)

type sink = event -> unit

let text_sink ?(prefix = "[jit] ") oc ev =
  output_string oc (prefix ^ to_string ev ^ "\n");
  flush oc

let jsonl_sink oc ev =
  output_string oc (to_json ev ^ "\n")

(* Bounded in-memory buffer: keeps the most recent [capacity] events and
   counts what it had to drop. The test suite's window into the engine. *)
module Ring = struct
  type t = {
    buf : event option array;
    mutable next : int;  (* next write position *)
    mutable stored : int;  (* total events ever written *)
  }

  let create capacity =
    if capacity <= 0 then invalid_arg "Telemetry.Ring.create: capacity must be positive";
    { buf = Array.make capacity None; next = 0; stored = 0 }

  let sink r ev =
    r.buf.(r.next) <- Some ev;
    r.next <- (r.next + 1) mod Array.length r.buf;
    r.stored <- r.stored + 1

  let capacity r = Array.length r.buf
  let length r = min r.stored (Array.length r.buf)
  let dropped r = max 0 (r.stored - Array.length r.buf)

  (* Oldest first. *)
  let contents r =
    let cap = Array.length r.buf in
    let n = length r in
    let start = if r.stored <= cap then 0 else r.next in
    List.init n (fun i ->
        match r.buf.((start + i) mod cap) with
        | Some ev -> ev
        | None -> assert false)

  let clear r =
    Array.fill r.buf 0 (Array.length r.buf) None;
    r.next <- 0;
    r.stored <- 0
end

(* ------------------------------------------------------------------ *)
(* Request trace context                                               *)
(* ------------------------------------------------------------------ *)

(* The request-scoped identity the service layer threads through queue
   wait, engine runs and background-compile lifecycles. Domain-local (like
   the default sinks): the service installs one per request on the domain
   playing that isolate, and every span or flight-recorder entry emitted
   underneath stamps itself with it. Nothing reads the context unless an
   observer is attached, so installing it costs one TLS write and cannot
   perturb the model. *)
type trace_ctx = {
  tc_trace : int;  (* trace id: unique per request across the whole run *)
  tc_request : int;  (* the request id (rq_id) *)
  tc_tenant : int;
  tc_isolate : int;
}

let trace_slot : trace_ctx option Support.Tls.t = Support.Tls.make (fun () -> None)

let current_trace () = Support.Tls.get trace_slot
let with_trace ctx f = Support.Tls.with_value trace_slot ctx f

(* ------------------------------------------------------------------ *)
(* Lifecycle spans                                                     *)
(* ------------------------------------------------------------------ *)

(* Chrome trace-event phase. Complete spans are the PR-5 lifecycle
   intervals; flow start/finish pairs stitch one request's work across
   lanes — the enqueue of a background compile (on the requesting lane)
   flows to its install (on whatever request harvests it). *)
type span_ph = Ph_complete | Ph_flow_start | Ph_flow_finish

(* A completed interval on the VM's deterministic model-cycle clock
   (interp cycles + native cycles + compile cycles at emission time — never
   wall time, so traces are reproducible). Spans describe engine lifecycle
   phases: interpreting a frame, each pipeline pass, codegen, a native run,
   a bailout's frame reconstruction, a recompilation. *)
type span = {
  sp_name : string;  (* e.g. "interpret", "pass:gvn", "native", "bailout" *)
  sp_cat : string;  (* taxonomy bucket: interp|compile|pass|codegen|native|bailout *)
  sp_fid : int;
  sp_fname : string;
  sp_start : int;  (* model-cycle timestamp at which the phase began *)
  sp_dur : int;  (* model cycles spent in the phase *)
  sp_depth : int;  (* nesting depth when the span was opened (0 = root) *)
  sp_args : (string * string) list;
      (* extra Chrome-trace args: (key, already-rendered JSON value) *)
  sp_ph : span_ph;  (* Ph_complete outside flow stitching *)
  sp_flow : int;  (* flow id tying a start to its finish; 0 = none *)
  sp_trace : int;  (* requesting trace id; 0 = no request context *)
  sp_lane : int;  (* Perfetto tid (the request lane); 0 renders as 1 *)
  sp_pid : int;  (* Perfetto pid (the isolate); 0 renders as 1 *)
}

type span_sink = span -> unit

let span_to_string s =
  match s.sp_ph with
  | Ph_complete ->
    Printf.sprintf "%*s%s f%d %s [%s] @%d +%d" (2 * s.sp_depth) "" s.sp_name s.sp_fid
      s.sp_fname s.sp_cat s.sp_start s.sp_dur
  | Ph_flow_start ->
    Printf.sprintf "%*sflow-s %s #%d f%d @%d" (2 * s.sp_depth) "" s.sp_name s.sp_flow
      s.sp_fid s.sp_start
  | Ph_flow_finish ->
    Printf.sprintf "%*sflow-f %s #%d f%d @%d" (2 * s.sp_depth) "" s.sp_name s.sp_flow
      s.sp_fid s.sp_start

(* One Chrome trace-event object, loadable in Perfetto / chrome://tracing
   when wrapped as {"traceEvents":[...]}. Complete spans are "ph":"X";
   flow stitches are "ph":"s"/"f" pairs sharing an "id". The model-cycle
   clock maps onto the format's microsecond timestamps. Lane/pid zero
   renders as 1 so standalone (`jsvm`) traces are byte-identical to the
   pre-flow format. *)
let span_to_chrome_json s =
  let tid = if s.sp_lane = 0 then 1 else s.sp_lane in
  let pid = if s.sp_pid = 0 then 1 else s.sp_pid in
  let trace_arg = if s.sp_trace = 0 then [] else [ ("trace_id", string_of_int s.sp_trace) ] in
  match s.sp_ph with
  | Ph_complete ->
    json_obj
      [
        ("name", jstr s.sp_name);
        ("cat", jstr s.sp_cat);
        ("ph", jstr "X");
        ("ts", string_of_int s.sp_start);
        ("dur", string_of_int s.sp_dur);
        (* one track per request lane: Perfetto nests same-track "X" events
           by timestamp containment, which our begin/end discipline
           guarantees *)
        ("pid", string_of_int pid);
        ("tid", string_of_int tid);
        ( "args",
          json_obj
            (("fid", string_of_int s.sp_fid) :: ("fn", jstr s.sp_fname)
            :: (trace_arg @ s.sp_args)) );
      ]
  | Ph_flow_start | Ph_flow_finish ->
    json_obj
      ([
         ("name", jstr s.sp_name);
         ("cat", jstr s.sp_cat);
         ("ph", jstr (if s.sp_ph = Ph_flow_start then "s" else "f"));
         ("id", string_of_int s.sp_flow);
         ("ts", string_of_int s.sp_start);
         ("pid", string_of_int pid);
         ("tid", string_of_int tid);
       ]
      @ (if s.sp_ph = Ph_flow_finish then [ ("bp", jstr "e") ] else [])
      @ [
          ( "args",
            json_obj
              (("fid", string_of_int s.sp_fid) :: ("fn", jstr s.sp_fname)
              :: (trace_arg @ s.sp_args)) );
        ])

(* ------------------------------------------------------------------ *)
(* Counter registry                                                    *)
(* ------------------------------------------------------------------ *)

(* Canonical counter names. The engine bumps these; the report and
   [jsvm --stats] read them back. Keeping the names here (rather than as
   string literals at each engine call site) makes the registry greppable
   and typo-proof. *)
module Key = struct
  let calls = "calls"
  let compiles = "compiles"
  let compiles_specialized = "compiles.specialized"
  let compiles_osr = "compiles.osr"
  let cache_hits = "cache.hits"
  let cache_misses = "cache.misses"
  let bailouts = "bailouts"
  let bailouts_entry = "bailouts.entry"
  let deopts = "deopts"
  let strike_discards = "discards.strikes"
  let blacklists = "blacklists"
  let osr_entries = "osr.entries"
  let arg_set_changes = "args.set_changes"
  let inlined = "inlined.sites"
  let guards_elided = "guards.elided"
  let compiles_aborted = "compiles.aborted"
  let quarantines = "quarantines"
  let pins = "quarantines.pinned"
  let storms = "deopt.storms"
  let cache_evictions = "cache.evictions"
  let versions_widened = "versions.widened"
  let versions_promoted = "versions.promoted"
  let compiles_widened = "compiles.widened"
  let interpro_facts = "interpro.facts"
  let interpro_seeded = "interpro.seeded"
  let deadlines = "deadlines"
  let compiles_degraded = "compiles.degraded"
  let bg_queued = "bg.queued"
  let bg_installed = "bg.installed"
  let bg_cancelled = "bg.cancelled"
  let bg_superseded = "bg.superseded"
  let bg_overflow = "bg.overflow"
  let bg_osr_entries = "bg.osr_entries"
  let bg_osr_stale = "bg.osr_stale"

  (* Per-point fired-fault counters ("faults.fired.exec_guard", ...). The
     argument is a [Faults.point_to_string] name; telemetry sits below the
     faults library, so the name crosses as a string. *)
  let faults_fired point = "faults.fired." ^ point

  (* Events a bounded ring sink overwrote (observability must account for
     its own losses; see [ring_counted_sink]). *)
  let telemetry_dropped = "telemetry.dropped"
end

module Counters = struct
  type t = {
    nfuncs : int;
    totals : (string, int ref) Hashtbl.t;
    per_fid : (string, int array) Hashtbl.t;
  }

  let create ~nfuncs () =
    { nfuncs; totals = Hashtbl.create 16; per_fid = Hashtbl.create 16 }

  let total_ref t name =
    match Hashtbl.find_opt t.totals name with
    | Some r -> r
    | None ->
      let r = ref 0 in
      Hashtbl.replace t.totals name r;
      r

  let fid_array t name =
    match Hashtbl.find_opt t.per_fid name with
    | Some a -> a
    | None ->
      let a = Array.make (max t.nfuncs 1) 0 in
      Hashtbl.replace t.per_fid name a;
      a

  (* A per-function bump also maintains the global total, so
     [total c Key.compiles] is always the sum over functions. *)
  let bump ?(n = 1) t ~fid name =
    (fid_array t name).(fid) <- (fid_array t name).(fid) + n;
    let r = total_ref t name in
    r := !r + n

  let bump_global ?(n = 1) t name =
    let r = total_ref t name in
    r := !r + n

  let get t ~fid name =
    match Hashtbl.find_opt t.per_fid name with Some a -> a.(fid) | None -> 0

  let total t name =
    match Hashtbl.find_opt t.totals name with Some r -> !r | None -> 0

  let names t =
    List.sort compare (Hashtbl.fold (fun k _ acc -> k :: acc) t.totals [])

  (* (name, total) rows, name-sorted — the --stats global table. *)
  let rows t = List.map (fun name -> (name, total t name)) (names t)

  (* Non-zero counters of one function, name-sorted. *)
  let fid_rows t fid =
    List.filter_map
      (fun name ->
        let v = get t ~fid name in
        if v = 0 then None else Some (name, v))
      (names t)

  (* Zero every registered counter (totals and per-function), keeping the
     registry identity so sinks holding a reference observe the reset. *)
  let reset t =
    Hashtbl.iter (fun _ r -> r := 0) t.totals;
    Hashtbl.iter (fun _ a -> Array.fill a 0 (Array.length a) 0) t.per_fid
end

(* A ring sink that accounts for its own losses: every event written over
   a still-buffered one bumps [Key.telemetry_dropped] in the given
   registry, so an operator reading a post-mortem ring knows exactly how
   much history it is missing (silent overwriting was the old behavior;
   the ring's [dropped] count still agrees with the counter). *)
let ring_counted_sink r c ev =
  if Ring.length r = Ring.capacity r then Counters.bump_global c Key.telemetry_dropped;
  Ring.sink r ev

(* ------------------------------------------------------------------ *)
(* The hub: one per engine instance                                    *)
(* ------------------------------------------------------------------ *)

type t = {
  counters : Counters.t;
  mutable sinks : sink list;
  mutable span_sinks : span_sink list;
}

(* Sinks installed on every hub created afterwards on the same domain —
   how the CLI and the tests observe engines they do not construct
   themselves. Domain-local: sinks are arbitrary closures over mutable
   accumulators, so they must never leak into engine runs fanned out to
   pool workers. *)
let default_sinks_slot : sink list Support.Tls.t = Support.Tls.make (fun () -> [])

let default_sinks () = Support.Tls.get default_sinks_slot
let set_default_sinks sinks = Support.Tls.set default_sinks_slot sinks

(* Same mechanism for span consumers (the tracer, --trace-spans). *)
let default_span_sinks_slot : span_sink list Support.Tls.t =
  Support.Tls.make (fun () -> [])

let default_span_sinks () = Support.Tls.get default_span_sinks_slot
let set_default_span_sinks sinks = Support.Tls.set default_span_sinks_slot sinks

let create ~nfuncs () =
  {
    counters = Counters.create ~nfuncs ();
    sinks = default_sinks ();
    span_sinks = default_span_sinks ();
  }

let attach t sink = t.sinks <- t.sinks @ [ sink ]
let attach_span t sink = t.span_sinks <- t.span_sinks @ [ sink ]
let counters t = t.counters

(* Emission is allocation-free when nobody listens: callers guard event
   construction behind [active]. *)
let active t = t.sinks <> []
let emit t ev = List.iter (fun sink -> sink ev) t.sinks

(* Same contract for spans: the engine computes timestamps and allocates
   span records only behind [spans_active], so tracing off costs nothing. *)
let spans_active t = t.span_sinks <> []
let emit_span t sp = List.iter (fun sink -> sink sp) t.span_sinks

let with_default_sinks sinks f = Support.Tls.with_value default_sinks_slot sinks f

let with_default_span_sinks sinks f =
  Support.Tls.with_value default_span_sinks_slot sinks f

(* Zero a hub's counter registry in place (registry identity preserved). *)
let reset_counters t = Counters.reset t.counters

(* A sink that folds the event stream into a standalone registry: one
   per-fid bump per event, keyed by [event_kind]. This is how a driver
   counts events across engines it does not construct (the engines bump
   their own hubs; this registry sees whatever the default sinks see). *)
let counting_sink c ev = Counters.bump c ~fid:(event_fid ev) (event_kind ev)

(* Scoped per-cell counting for the fig drivers: a *fresh* registry plus a
   [counting_sink] appended to this domain's default sinks for the duration
   of [f]. Because the registry is created here and discarded after, event
   counts can never bleed between workloads of a suite sweep, even when the
   surrounding driver reuses its other sinks across cells. *)
let with_fresh_counters ~nfuncs f =
  let c = Counters.create ~nfuncs () in
  with_default_sinks (default_sinks () @ [ counting_sink c ]) (fun () -> f c)
