(** Structured JIT telemetry.

    The paper's whole argument is about {e when} the engine compiles,
    specializes, bails out, deoptimizes and blacklists (§4, §6). This module
    makes those decisions first-class: the engine emits an {!event} at every
    policy transition, pluggable {!sink}s consume them (an in-memory
    {!Ring} for tests, {!text_sink} for humans, {!jsonl_sink} for tools),
    and a {!Counters} registry of named per-function/global counters is the
    single source of truth the engine report is derived from.

    The module carries only primitive payloads and sits below the IRs (like
    [Diag]), so any layer can emit through it without dependency cycles.
    Emission is free when no sink is attached — callers guard event
    construction behind {!active} — and counters never charge model cycles,
    so telemetry cannot perturb the paper's measurements. *)

type pass_delta = {
  pd_pass : string;  (** pipeline pass name *)
  pd_before : int;  (** MIR instructions entering the pass *)
  pd_after : int;  (** MIR instructions after it ran *)
}
(** Per-pass size attribution for one compilation. The model charges
    compile time per instruction visited, so [pd_before] is also the pass's
    cost weight. *)

type deopt_reason =
  | Arg_mismatch
      (** a call missed the specialization cache: discard, recompile
          generic, blacklist (the paper's §4 deoptimization) *)
  | Entry_guard
      (** a specialized binary's entry type barrier failed at pc 0 *)
  | Strike_limit
      (** in-body guard failures reached [max_bailouts] for one binary *)

type quarantine_reason =
  | Compile_fault
      (** a compilation aborted mid-pipeline: a verifier or lint diagnostic,
          or an injected [Faults] failure *)
  | Deopt_storm
      (** the function oscillated compile→bailout→recompile past the
          engine's [storm_threshold] *)
  | Cache_oom  (** code-cache admission failed for the function's binary *)

type event =
  | Compile_start of {
      fid : int;
      fname : string;
      specialized : bool;
      selective : bool;
      osr : bool;
    }
  | Compile_end of {
      fid : int;
      fname : string;
      specialized : bool;
      selective : bool;
      osr : bool;
      size : int;  (** native instructions produced *)
      cycles : int;  (** model compile cycles charged *)
      passes : pass_delta list;  (** pipeline passes, in execution order *)
    }
  | Cache_hit of {
      fid : int;
      fname : string;
      index : int;  (** position found in the MRU-first cache list *)
      entries : int;  (** entries at probe time *)
    }
  | Cache_miss of { fid : int; fname : string; entries : int }
  | Specialize of {
      fid : int;
      fname : string;
      args : string;  (** display form of the burned-in tuple *)
      mask : bool array option;  (** selective: which positions burn in *)
    }
  | Deopt of { fid : int; fname : string; reason : deopt_reason }
  | Bailout of {
      fid : int;
      fname : string;
      pc : int;  (** bytecode pc interpretation resumes at *)
      native_pc : int;  (** native instruction that failed *)
      reason : string;
      osr_entry : bool;
      strikes : int;  (** strikes against the binary, after this one *)
    }
  | Blacklist of { fid : int; fname : string }
  | Osr_enter of { fid : int; fname : string; pc : int; loop_edges : int }
  | Inline_decision of { fid : int; fname : string; inlined : int }
  | Guard_elided of {
      fid : int;
      fname : string;
      guard : string;  (** "type" | "array" | "bounds" *)
      origin_fid : int;  (** function the guard originated in (inlining) *)
      pc : int;  (** bytecode pc of the guarded operation *)
    }
  | Compile_abort of {
      fid : int;
      fname : string;
      specialized : bool;
      osr : bool;
      reason : string;  (** the diagnostic (or injected fault) message *)
      cycles : int;  (** wasted compile cycles — still charged to the run *)
    }
  | Quarantine of {
      fid : int;
      fname : string;
      reason : quarantine_reason;
      backoff_calls : int;
          (** calls until compilation may be retried; 0 when permanent *)
      permanent : bool;  (** the function is pinned to the interpreter tier *)
    }
  | Cache_evict of {
      fid : int;
      fname : string;  (** owner of the evicted binary *)
      bytes : int;  (** bytes reclaimed *)
      in_use : int;  (** cache bytes in use after the eviction *)
    }
  | Version_widen of {
      fid : int;
      fname : string;
      index : int;  (** the widened version's position (MRU-first) *)
      from_key : string;  (** display form of the key it had *)
      to_key : string;  (** display form of the replacement key *)
      entries : int;  (** cache entries before the widening *)
    }
      (** polyvariant policy: a version was replaced by a one-step-wider
          one (values → tags, tags → generic) instead of being discarded *)
  | Deadline_hit of {
      fid : int;  (** function whose dispatch observed the expiry *)
      fname : string;
      spent : int;  (** model cycles spent in the run when it tripped *)
      limit : int;  (** the run's cycle budget *)
    }
      (** a cooperative deadline expired mid-dispatch; the engine raises
          [Engine.Deadline_exceeded] immediately after emitting, so the
          event appears exactly once per tripped run *)
  | Compile_enqueue of {
      fid : int;
      fname : string;
      kind : string;
          (** queued signature flavor: ["values"], ["selective"],
              ["tags"] or ["generic"] *)
      osr : bool;  (** the request carries an OSR entry snapshot *)
      ready : int;  (** modeled completion cycle *)
      depth : int;  (** queue occupancy after the enqueue *)
    }
      (** a hot-call site handed a compile request to the background
          queue and kept interpreting *)
  | Compile_ready of {
      fid : int;
      fname : string;
      size : int;  (** native instructions installed *)
      cycles : int;  (** off-clock compile cycles the artifact cost *)
      wait : int;  (** model cycles from enqueue to harvest *)
    }
      (** a finished background artifact was installed into the version
          cache (emitted at the harvesting call/loop edge) *)
  | Compile_cancel of {
      fid : int;
      fname : string;
      reason : string;
          (** ["overflow"], ["degrade"], ["recycle"], ["install-fault"]
              or ["enqueue-fault"] *)
    }
      (** a queued request was dropped before installing *)
  | Osr_entry of { fid : int; fname : string; pc : int }
      (** a hot interpreter loop transferred into a finished background
          binary at its loop head (distinct from [Osr_enter], which marks
          the synchronous OSR {e trigger}) *)

val event_fid : event -> int
val event_fname : event -> string

val event_kind : event -> string
(** Stable snake_case tag, e.g. ["cache_hit"] (the JSON ["ev"] field). *)

val deopt_reason_to_string : deopt_reason -> string
val quarantine_reason_to_string : quarantine_reason -> string

val to_string : event -> string
(** One human-readable line (the [--trace] format). *)

val to_json : event -> string
(** One JSON object, no trailing newline (the JSONL format). *)

val json_escape : string -> string
(** RFC 8259 string-body escaping: double quote and backslash always, the
    short forms [\b \t \n \f \r], and [\u00XX] for every remaining control
    character (everything below [0x20], including the whole [<0x10]
    range). *)

val json_unescape : string -> string
(** Inverse of {!json_escape} (accepts any escape {!json_escape} emits,
    plus [\/]; [\uXXXX] must encode a single byte).
    @raise Invalid_argument on a malformed escape. *)

(** {1 Request trace context}

    The request-scoped identity the service layer threads from admission
    through queue wait, engine runs and background-compile lifecycles.
    Domain-local, like the default sinks: the service installs one per
    request on the domain playing that isolate; spans and flight-recorder
    entries emitted underneath stamp themselves with it. Nothing reads
    the context unless an observer is attached, so installing it cannot
    perturb the model. *)

type trace_ctx = {
  tc_trace : int;  (** trace id — unique per request across the run *)
  tc_request : int;  (** the request id ([rq_id]) *)
  tc_tenant : int;
  tc_isolate : int;
}

val current_trace : unit -> trace_ctx option

val with_trace : trace_ctx option -> (unit -> 'a) -> 'a
(** Run [f] with this domain's trace context temporarily replaced —
    [None] explicitly clears it (background work with no requester). *)

(** {1 Lifecycle spans} *)

(** Chrome trace-event phase: complete lifecycle intervals, or the flow
    start/finish stitches that tie one request's background compile from
    its enqueue (on the requesting lane) to its install (on whatever
    request harvests it). *)
type span_ph = Ph_complete | Ph_flow_start | Ph_flow_finish

type span = {
  sp_name : string;  (** e.g. ["interpret"], ["pass:gvn"], ["native"] *)
  sp_cat : string;
      (** taxonomy bucket: [interp], [compile], [pass], [codegen],
          [native], [bailout] *)
  sp_fid : int;
  sp_fname : string;
  sp_start : int;  (** model-cycle timestamp at which the phase began *)
  sp_dur : int;  (** model cycles spent in the phase *)
  sp_depth : int;  (** nesting depth when the span was opened (0 = root) *)
  sp_args : (string * string) list;
      (** extra Chrome-trace args: (key, already-rendered JSON value) *)
  sp_ph : span_ph;  (** [Ph_complete] outside flow stitching *)
  sp_flow : int;  (** flow id tying a start to its finish; 0 = none *)
  sp_trace : int;  (** requesting trace id; 0 = no request context *)
  sp_lane : int;  (** Perfetto tid (the request lane); 0 renders as 1 *)
  sp_pid : int;  (** Perfetto pid (the isolate); 0 renders as 1 *)
}
(** A completed engine-lifecycle interval on the deterministic model-cycle
    clock (never wall time: traces are byte-reproducible). *)

type span_sink = span -> unit

val span_to_string : span -> string
(** One indented human-readable line per span. *)

val span_to_chrome_json : span -> string
(** One Chrome trace-event object (["ph":"X"] for complete spans,
    ["s"]/["f"] with a shared ["id"] for flow stitches); a file of these
    wrapped as [{"traceEvents":[...]}] loads in Perfetto. *)

(** {1 Sinks} *)

type sink = event -> unit

val text_sink : ?prefix:string -> out_channel -> sink
(** Writes [prefix ^ to_string ev] per event and flushes (default prefix
    ["[jit] "]). *)

val jsonl_sink : out_channel -> sink
(** Writes [to_json ev] per event, newline-terminated, unflushed. *)

(** Bounded in-memory event buffer: keeps the most recent [capacity]
    events, oldest first in {!contents}, and counts what it dropped. *)
module Ring : sig
  type t

  val create : int -> t
  (** @raise Invalid_argument when the capacity is not positive. *)

  val sink : t -> sink
  val contents : t -> event list
  val length : t -> int
  val capacity : t -> int
  val dropped : t -> int
  val clear : t -> unit
end

(** {1 Counters} *)

(** Canonical counter names bumped by the engine. *)
module Key : sig
  val calls : string
  val compiles : string
  val compiles_specialized : string
  val compiles_osr : string
  val cache_hits : string
  val cache_misses : string
  val bailouts : string
  val bailouts_entry : string

  val deopts : string
  (** §4 deoptimizations: [Arg_mismatch] + [Entry_guard] (not strike
      discards, which recompile with the same rights) *)

  val strike_discards : string
  val blacklists : string
  val osr_entries : string
  val arg_set_changes : string
  val inlined : string
  val guards_elided : string

  val compiles_aborted : string
  (** compilations that aborted mid-pipeline (contained, cycles charged) *)

  val quarantines : string
  (** quarantine entries (with backoff); includes the final pinning one *)

  val pins : string
  (** functions pinned to the interpreter tier permanently *)

  val storms : string
  (** deopt-storm detector trips *)

  val cache_evictions : string
  (** binaries evicted by the code-cache byte budget *)

  val versions_widened : string
  (** polyvariant ladder steps: versions replaced by a wider key *)

  val versions_promoted : string
  (** tier-2 promotions: specialized versions compiled alongside a
      still-hot function's generic catch-all *)

  val compiles_widened : string
  (** compilations of tag-keyed (widened) versions *)

  val interpro_facts : string
  (** constant argument signatures recorded at monomorphic call sites of
      compiled callers (attributed to the callee) *)

  val interpro_seeded : string
  (** value-specialization decisions covered by an interprocedural
      constant signature *)

  val deadlines : string
  (** cooperative deadline expiries ([Deadline_hit] events) *)

  val compiles_degraded : string
  (** compilations forced to the baseline pipeline by overload degrade
      mode (the service layer shedding specialization before requests) *)

  val bg_queued : string
  (** background compile requests admitted to the queue *)

  val bg_installed : string
  (** background artifacts harvested and installed into the cache *)

  val bg_cancelled : string
  (** queued requests dropped before installing (degrade drain, isolate
      recycle, injected faults) *)

  val bg_superseded : string
  (** installed versions detached because a queued recompile at a wider
      signature landed (the re-specialization drift loop) *)

  val bg_overflow : string
  (** enqueues refused because the queue was at [--compile-queue-depth] *)

  val bg_osr_entries : string
  (** loop-edge transfers into finished background binaries *)

  val bg_osr_stale : string
  (** OSR-flavored artifacts whose entry was refused because the live
      frame no longer matched the enqueue snapshot (the binary still
      installs for normal calls) *)

  val faults_fired : string -> string
  (** [faults_fired point_name] is the per-point injected-fault counter
      name, e.g. ["faults.fired.exec_guard"]. The argument is a
      [Faults.point_to_string] name (telemetry sits below the faults
      library, so the point crosses as a string). *)

  val telemetry_dropped : string
  (** events a bounded ring sink overwrote ({!ring_counted_sink}) *)
end

(** Named monotonic counters, per-function and global. A per-function
    {!Counters.bump} also maintains the global total, so totals are always
    the sum over functions. Reads of a name never bumped return 0. *)
module Counters : sig
  type t

  val create : nfuncs:int -> unit -> t
  val bump : ?n:int -> t -> fid:int -> string -> unit
  val bump_global : ?n:int -> t -> string -> unit
  val get : t -> fid:int -> string -> int
  val total : t -> string -> int

  val rows : t -> (string * int) list
  (** (name, global total), name-sorted. *)

  val fid_rows : t -> int -> (string * int) list
  (** One function's non-zero counters, name-sorted. *)

  val reset : t -> unit
  (** Zero every registered counter (totals and per-function) in place,
      preserving the registry identity: sinks or reports holding the
      registry observe the reset. *)
end

(** {1 The hub}

    One [t] per engine instance: its counter registry plus the sinks
    receiving its events. *)

type t

val create : nfuncs:int -> unit -> t
(** A fresh hub; starts with the current {!default_sinks} installed. *)

val attach : t -> sink -> unit
val attach_span : t -> span_sink -> unit
val counters : t -> Counters.t

val reset_counters : t -> unit
(** {!Counters.reset} on the hub's registry. *)

val active : t -> bool
(** [true] when at least one sink is attached. Emitters guard event
    construction behind this so disabled telemetry allocates nothing. *)

val emit : t -> event -> unit

val spans_active : t -> bool
(** [true] when at least one span sink is attached. The engine computes
    span timestamps and allocates span records only behind this, so
    tracing off charges nothing and allocates nothing. *)

val emit_span : t -> span -> unit

val default_sinks : unit -> sink list
(** Sinks copied into every hub subsequently created {e on this domain} —
    how [jsvm --trace] and the tests observe engines they don't construct
    themselves. Domain-local: sinks close over mutable accumulators, so
    they deliberately do not propagate into pool tasks. *)

val set_default_sinks : sink list -> unit

val with_default_sinks : sink list -> (unit -> 'a) -> 'a
(** Run [f] with this domain's {!default_sinks} temporarily replaced. *)

val default_span_sinks : unit -> span_sink list
(** Span sinks copied into subsequently created hubs on this domain (the
    span analogue of {!default_sinks}; same domain-locality contract). *)

val set_default_span_sinks : span_sink list -> unit

val with_default_span_sinks : span_sink list -> (unit -> 'a) -> 'a
(** Run [f] with this domain's {!default_span_sinks} temporarily
    replaced. *)

val ring_counted_sink : Ring.t -> Counters.t -> sink
(** {!Ring.sink} that additionally bumps {!Key.telemetry_dropped} in the
    given registry every time the write overwrites a still-buffered event,
    so bounded-buffer losses are accounted for instead of silent. The
    counter always agrees with {!Ring.dropped}. *)

val counting_sink : Counters.t -> sink
(** A sink that folds the event stream into [c]: one per-function bump per
    event, named by {!event_kind}. Lets a driver count events across
    engines it does not construct. *)

val with_fresh_counters : nfuncs:int -> (Counters.t -> 'a) -> 'a
(** Scoped per-cell event counting: creates a {e fresh} registry, appends
    [counting_sink] on it to this domain's {!default_sinks} for the
    duration of [f], and passes the registry to [f]. Used by the fig
    drivers so per-function counts cannot bleed between the workloads of a
    suite sweep even when other sinks are reused across cells. *)
