open Support

type stats = {
  calls_histogram : Stats.Histogram.t;
  argsets_histogram : Stats.Histogram.t;
  type_fractions : (string * float) list;
  nfunctions : int;
}

(* Figure 4, web column: types of parameters of single-argument-set
   functions found in the wild. *)
let web_type_mix =
  [
    ("object", 0.3557);
    ("string", 0.3295);
    ("function", 0.09);
    ("int", 0.0636);
    ("array", 0.05);
    ("bool", 0.04);
    ("double", 0.025);
    ("undefined", 0.03);
    ("null", 0.016);
  ]

let calls_head = 0.4888  (* Figure 1: functions called exactly once *)
let argsets_head = 0.5991  (* Figure 2: functions with one argument set *)
let calls_tail = 2000  (* the paper's head counts ~1,956 calls *)
let argsets_tail = 1200  (* most varied observed: 1,101 sets *)

let session ~seed ~nfunctions =
  let rng = Prng.create seed in
  let calls_alpha = Powerlaw.calibrate_alpha ~target_mass_at_one:calls_head ~max_value:calls_tail in
  (* Functions called once trivially have one argument set, so the sampler
     for the remaining functions is calibrated to the conditional head:
     P(argsets = 1) = P(calls = 1) + P(calls > 1) * q. *)
  let conditional_head = (argsets_head -. calls_head) /. (1.0 -. calls_head) in
  let argsets_alpha =
    Powerlaw.calibrate_alpha ~target_mass_at_one:conditional_head ~max_value:argsets_tail
  in
  let calls_pl = Powerlaw.create ~alpha:calls_alpha ~max_value:calls_tail in
  let argsets_pl = Powerlaw.create ~alpha:argsets_alpha ~max_value:argsets_tail in
  let calls_histogram = Stats.Histogram.create () in
  let argsets_histogram = Stats.Histogram.create () in
  let type_counts = Hashtbl.create 16 in
  let total_params = ref 0 in
  for _ = 1 to nfunctions do
    let calls = Powerlaw.sample calls_pl rng in
    (* A function cannot see more distinct argument tuples than calls. *)
    let argsets = if calls = 1 then 1 else min calls (Powerlaw.sample argsets_pl rng) in
    Stats.Histogram.add calls_histogram calls;
    Stats.Histogram.add argsets_histogram argsets;
    if argsets = 1 then begin
      (* Parameter types are reported for single-argument-set functions. *)
      let nparams = 1 + Prng.int rng 3 in
      for _ = 1 to nparams do
        let ty = Prng.weighted rng (List.map (fun (n, w) -> (w, n)) web_type_mix) in
        Hashtbl.replace type_counts ty
          (1 + Option.value (Hashtbl.find_opt type_counts ty) ~default:0);
        incr total_params
      done
    end
  done;
  let type_fractions =
    List.map
      (fun (name, _) ->
        let c = Option.value (Hashtbl.find_opt type_counts name) ~default:0 in
        (name, float_of_int c /. float_of_int (max 1 !total_params)))
      web_type_mix
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  { calls_histogram; argsets_histogram; type_fractions; nfunctions }

(* ------------------------------------------------------------------ *)
(* Synthetic site programs (code-size study)                           *)
(* ------------------------------------------------------------------ *)

type site_profile = { site_name : string; site_functions : int; varied_fraction : float }

let google = { site_name = "www.google.com"; site_functions = 40; varied_fraction = 0.08 }
let facebook = { site_name = "www.facebook.com"; site_functions = 55; varied_fraction = 0.10 }
let twitter = { site_name = "www.twitter.com"; site_functions = 45; varied_fraction = 0.30 }

(* Function-body templates in the flavour of real site helpers: string
   formatting, small numeric transforms, array scans, object field math. *)
let templates =
  [|
    (fun name k ->
      Printf.sprintf
        "function %s(a, b) {\n  var t = 0;\n  for (var i = 0; i < %d; i++) t = (t + a * i + b) | 0;\n  return t;\n}"
        name (8 + (k mod 9)));
    (fun name k ->
      Printf.sprintf
        "function %s(s) {\n  var h = %d;\n  for (var i = 0; i < s.length; i++) h = (h * 31 + s.charCodeAt(i)) | 0;\n  return h;\n}"
        name (17 + k));
    (fun name k ->
      Printf.sprintf
        "function %s(arr, x) {\n  var n = 0;\n  for (var i = 0; i < arr.length; i++) { if (arr[i] > x + %d) n++; }\n  return n;\n}"
        name (k mod 7));
    (fun name k ->
      Printf.sprintf
        "function %s(o) {\n  return (o.a + o.b * %d) %% 1000;\n}" name (2 + (k mod 5)));
    (fun name k ->
      Printf.sprintf
        "function %s(x, f) {\n  var acc = 0;\n  for (var i = 0; i < %d; i++) acc += f(x + i);\n  return acc;\n}"
        name (5 + (k mod 6)));
    (fun name k ->
      Printf.sprintf
        "function %s(x) {\n  if (x < %d) return x * 2;\n  return x - %d;\n}" name (k mod 50)
        (k mod 13));
  |]

let synthetic_site ~seed profile =
  let rng = Prng.create seed in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "// auto-built site benchmark: ";
  Buffer.add_string buf profile.site_name;
  Buffer.add_char buf '\n';
  Buffer.add_string buf "function __helper(x) { return x + 1; }\n";
  (* Pick each function's template once; the driver must call it with the
     matching argument shape. *)
  let picks =
    List.init profile.site_functions (fun i ->
        (Printf.sprintf "site_fn_%d" i, Prng.int rng (Array.length templates)))
  in
  List.iteri
    (fun i (name, template_id) ->
      Buffer.add_string buf (templates.(template_id) name (i + Prng.int rng 100));
      Buffer.add_char buf '\n')
    picks;
  (* Driver: call each function enough times to get compiled; a
     profile-dependent fraction is driven with changing arguments, forcing
     the deoptimization/recompilation path. *)
  Buffer.add_string buf "var sink = 0;\nvar arr = [3, 1, 4, 1, 5, 9, 2, 6];\n";
  List.iteri
    (fun i (name, template_id) ->
      let varied = Prng.float rng 1.0 < profile.varied_fraction in
      if varied then begin
        (* Different argument tuple on every iteration, forcing the
           specialize-then-deoptimize path. *)
        let v = Printf.sprintf "i_%d" i in
        let call =
          match template_id with
          | 0 -> Printf.sprintf "%s(%s, %s * 3)" name v v
          | 1 -> Printf.sprintf "%s(\"q\" + %s)" name v
          | 2 -> Printf.sprintf "%s(arr, %s)" name v
          | 3 -> Printf.sprintf "%s({a: %s, b: %s + 1})" name v v
          | 4 -> Printf.sprintf "%s(%s, __helper)" name v
          | _ -> Printf.sprintf "%s(%s)" name v
        in
        Buffer.add_string buf
          (Printf.sprintf "for (var %s = 0; %s < 14; %s++) sink += %s;\n" v v v call)
      end
      else begin
        (* Same arguments every time: a stable tuple the cache can reuse. *)
        let a = i mod 10 in
        let call =
          match template_id with
          | 0 -> Printf.sprintf "%s(%d, %d)" name a (a * 3)
          | 1 -> Printf.sprintf "%s(\"q%d\")" name a
          | 2 -> Printf.sprintf "%s(arr, %d)" name a
          | 3 -> Printf.sprintf "%s(o_%d)" name i
          | 4 -> Printf.sprintf "%s(%d, __helper)" name a
          | _ -> Printf.sprintf "%s(%d)" name a
        in
        if template_id = 3 then
          Buffer.add_string buf (Printf.sprintf "var o_%d = {a: %d, b: 9};\n" i a);
        Buffer.add_string buf
          (Printf.sprintf "for (var j_%d = 0; j_%d < 14; j_%d++) sink += %s;\n" i i i call)
      end)
    picks;
  Buffer.add_string buf "print(sink | 0);\n";
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Per-request session programs (service layer)                        *)
(* ------------------------------------------------------------------ *)

let request_source ~seed =
  let rng = Prng.create seed in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "function __helper(x) { return x + 1; }\n";
  (* A handful of handlers drawn from the same template pool as the site
     programs. Repeated requests for the same tenant re-run this exact
     program on a warm engine, so the handlers cross the hot-call
     threshold within a few requests and later requests exercise the
     warm path; the varied handler keeps some deopt/widening pressure. *)
  let nfuncs = 3 + Prng.int rng 3 in
  let picks =
    List.init nfuncs (fun i ->
        (Printf.sprintf "req_fn_%d" i, Prng.int rng (Array.length templates)))
  in
  List.iteri
    (fun i (name, template_id) ->
      Buffer.add_string buf (templates.(template_id) name (i + Prng.int rng 100));
      Buffer.add_char buf '\n')
    picks;
  Buffer.add_string buf "var sink = 0;\nvar arr = [3, 1, 4, 1, 5, 9, 2, 6];\n";
  List.iteri
    (fun i (name, template_id) ->
      let varied = Prng.float rng 1.0 < 0.15 in
      let iters = 4 + Prng.int rng 5 in
      if varied then begin
        let v = Printf.sprintf "i_%d" i in
        let call =
          match template_id with
          | 0 -> Printf.sprintf "%s(%s, %s * 3)" name v v
          | 1 -> Printf.sprintf "%s(\"q\" + %s)" name v
          | 2 -> Printf.sprintf "%s(arr, %s)" name v
          | 3 -> Printf.sprintf "%s({a: %s, b: %s + 1})" name v v
          | 4 -> Printf.sprintf "%s(%s, __helper)" name v
          | _ -> Printf.sprintf "%s(%s)" name v
        in
        Buffer.add_string buf
          (Printf.sprintf "for (var %s = 0; %s < %d; %s++) sink += %s;\n" v v iters v call)
      end
      else begin
        let a = i mod 10 in
        let call =
          match template_id with
          | 0 -> Printf.sprintf "%s(%d, %d)" name a (a * 3)
          | 1 -> Printf.sprintf "%s(\"q%d\")" name a
          | 2 -> Printf.sprintf "%s(arr, %d)" name a
          | 3 -> Printf.sprintf "%s(o_%d)" name i
          | 4 -> Printf.sprintf "%s(%d, __helper)" name a
          | _ -> Printf.sprintf "%s(%d)" name a
        in
        if template_id = 3 then
          Buffer.add_string buf (Printf.sprintf "var o_%d = {a: %d, b: 9};\n" i a);
        Buffer.add_string buf
          (Printf.sprintf "for (var j_%d = 0; j_%d < %d; j_%d++) sink += %s;\n" i i iters i call)
      end)
    picks;
  Buffer.add_string buf "print(sink | 0);\n";
  Buffer.contents buf
