(** Synthetic web-session workload.

    The paper instruments Firefox over the Alexa top-100 (Figures 1, 2, 4);
    that corpus is not available, so this module generates a statistically
    calibrated substitute, as documented in DESIGN.md:

    - per-function call counts follow a power law whose head is calibrated
      to the paper's 48.88% of functions called exactly once;
    - per-function distinct-argument-set counts follow a power law
      calibrated to 59.91% of functions with a single argument set (capped
      by the call count);
    - parameter types of single-argument-set functions follow the paper's
      Figure 4 web column (objects 35.57%, strings 32.95%, ints 6.36%, ...).

    [synthetic_site] additionally materializes an executable MiniJS program
    in the spirit of Richards et al.'s automatically constructed web
    benchmarks, used for the paper's code-size study on google.com,
    facebook.com and twitter.com. *)

type stats = {
  calls_histogram : Support.Stats.Histogram.t;
  argsets_histogram : Support.Stats.Histogram.t;
  type_fractions : (string * float) list;
      (** over the paper's categories: array, bool, double, function, int,
          null, object, string, undefined *)
  nfunctions : int;
}

val session : seed:int -> nfunctions:int -> stats
(** Simulate one browsing session over [nfunctions] distinct functions
    (the paper observed 23,002). Deterministic in [seed]. *)

(** Profile of a synthetic "site" program for the code-size study. *)
type site_profile = {
  site_name : string;
  site_functions : int;  (** function count in the generated program *)
  varied_fraction : float;
      (** fraction of functions driven with several argument sets (deopt
          pressure; the paper reports 23.1% extra recompiles on twitter
          vs 5.0% on google) *)
}

val google : site_profile
val facebook : site_profile
val twitter : site_profile

val synthetic_site : seed:int -> site_profile -> string
(** A runnable MiniJS program: a pool of generated functions plus a driver
    that calls each hot enough to be compiled, with per-function argument
    variability drawn from the profile. *)

val request_source : seed:int -> string
(** A small session program sized for one service request: 3–5 handlers
    from the same template pool as [synthetic_site] plus a driver loop,
    mostly argument-stable with a little deopt pressure. Deterministic in
    [seed]; the service layer keys each tenant to one seed, so repeated
    requests re-run the identical program on a warm engine. *)
