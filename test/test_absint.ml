(* Tests for the abstract-interpretation layer: the lattice, the fixpoint
   analysis, guard proofs (elision soundness), the translation-validation
   sandwich, the missed-guard report, and the spec_check entry-state
   audit.

   The lattice cases are pure unit tests; the analysis cases build real
   MIR through the builder + typer exactly like the pipeline does; the
   differential case drives 60 generated programs through the engine with
   guard elision on vs off and requires byte-identical output. *)

open Runtime

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let itv lo hi = { Absint.lo; hi }
let int_val lo hi = Absint.vals (Absint.tag_bit Value.Tag_int) (Some (itv lo hi))

(* --- the lattice --- *)

let test_join_laws () =
  let c1 = Absint.Const (Value.Int 1) and c2 = Absint.Const (Value.Int 2) in
  Alcotest.(check bool) "bot is identity" true
    (Absint.equal (Absint.join Absint.Bot c1) c1);
  Alcotest.(check bool) "join is idempotent" true
    (Absint.equal (Absint.join c1 c1) c1);
  let j = Absint.join c1 c2 in
  Alcotest.(check bool) "distinct ints hull" true
    (Absint.equal j (int_val 1 2));
  Alcotest.(check bool) "join commutes" true
    (Absint.equal j (Absint.join c2 c1));
  let mixed = Absint.join c1 (Absint.Const (Value.Str "x")) in
  Alcotest.(check int) "tag union"
    (Absint.tag_bit Value.Tag_int lor Absint.tag_bit Value.Tag_string)
    (Absint.tags_of mixed);
  Alcotest.(check bool) "top absorbs" true
    (Absint.equal (Absint.join Absint.top c2) Absint.top)

let test_vals_normalization () =
  Alcotest.(check bool) "singleton int is Const" true
    (Absint.equal (int_val 4 4) (Absint.Const (Value.Int 4)));
  Alcotest.(check bool) "empty range drops int" true
    (Absint.equal (Absint.vals (Absint.tag_bit Value.Tag_int) (Some (itv 5 3))) Absint.Bot);
  Alcotest.(check bool) "no tags is bot" true
    (Absint.equal (Absint.vals 0 None) Absint.Bot);
  (* A non-int tag set ignores any range. *)
  match Absint.vals (Absint.tag_bit Value.Tag_string) (Some (itv 0 1)) with
  | Absint.Vals { range = None; _ } -> ()
  | av -> Alcotest.failf "range not dropped: %s" (Absint.to_string av)

let test_widen_terminates () =
  let a = int_val 0 5 in
  Alcotest.(check bool) "widen is reflexive" true
    (Absint.equal (Absint.widen a a) a);
  (* A growing upper bound jumps to the int32 extreme in one step, so an
     ascending chain stabilizes after at most two widenings per side. *)
  let w1 = Absint.widen a (int_val 0 6) in
  (match Absint.int_range w1 with
  | Some { Absint.lo = 0; hi } when hi = Value.int32_max -> ()
  | _ -> Alcotest.failf "expected [0,int32_max], got %s" (Absint.to_string w1));
  let w2 = Absint.widen w1 (Absint.join w1 (int_val 0 7)) in
  Alcotest.(check bool) "stable after the jump" true (Absint.equal w1 w2);
  let w3 = Absint.widen w2 (Absint.join w2 (int_val (-3) 7)) in
  match Absint.int_range w3 with
  | Some { Absint.lo; hi } when lo = Value.int32_min && hi = Value.int32_max ->
    Alcotest.(check bool) "both extremes are a fixed point" true
      (Absint.equal w3 (Absint.widen w3 (Absint.join w3 (int_val 9 9))))
  | _ -> Alcotest.failf "expected full int range, got %s" (Absint.to_string w3)

(* --- building blocks shared by the analysis cases --- *)

let sumto_src =
  {|
function sumto(s, n) {
  var t = 0;
  for (var i = 0; i < n; i++) t += s[i];
  return t;
}
|}

let build src ?spec_args ?spec_mask () =
  let program = Bytecode.Compile.program_of_source src in
  let func = program.Bytecode.Program.funcs.(1) in
  (program, Builder.build ~program ~func ?spec_args ?spec_mask ())

(* Typer only: guards are materialized but nothing has deleted any. *)
let bare = Pipeline.make ~licm:false ~gvn:false ~ge:false "bare"

(* The full default pipeline with guard elision on. *)
let full = Pipeline.make ~ps:true ~cp:true ~dce:true ~bce:true "full"

let find_guard f pred =
  let found = ref None in
  List.iter
    (fun bid ->
      let b = Mir.block f bid in
      List.iteri
        (fun idx (i : Mir.instr) ->
          if !found = None && pred i.Mir.kind then found := Some (bid, idx, i))
        b.Mir.body)
    f.Mir.block_order;
  !found

let count f pred =
  let n = ref 0 in
  Mir.iter_instrs f (fun i -> if pred i.Mir.kind then incr n);
  !n

let remove_def f def =
  List.iter
    (fun bid ->
      let b = Mir.block f bid in
      b.Mir.body <- List.filter (fun (i : Mir.instr) -> i.Mir.def <> def) b.Mir.body)
    f.Mir.block_order

(* --- entry state from the specialization key --- *)

let test_entry_state () =
  let arr = Value.Arr (Value.arr_of_list [ Value.Int 1; Value.Int 2 ]) in
  let _, gen = build sumto_src () in
  Array.iter
    (fun av ->
      Alcotest.(check bool) "unspecialized entry is top" true
        (Absint.equal av Absint.top))
    (Absint.entry_state gen);
  let _, spec = build sumto_src ~spec_args:[| arr; Value.Int 2 |] () in
  (match Absint.entry_state spec with
  | [| Absint.Const a; Absint.Const (Value.Int 2) |] ->
    Alcotest.(check bool) "array burned by identity" true (Value.same_value a arr)
  | st ->
    Alcotest.failf "expected two constants, got %s"
      (String.concat " " (Array.to_list (Array.map Absint.to_string st))));
  let _, masked =
    build sumto_src ~spec_args:[| arr; Value.Int 2 |]
      ~spec_mask:[| true; false |] ()
  in
  match Absint.entry_state masked with
  | [| Absint.Const _; free |] ->
    Alcotest.(check bool) "masked-off position is top" true
      (Absint.equal free Absint.top)
  | st ->
    Alcotest.failf "expected const+top, got %s"
      (String.concat " " (Array.to_list (Array.map Absint.to_string st)))

(* --- the fixpoint --- *)

let test_induction_variable_state () =
  let arr = Value.Arr (Value.arr_of_list (List.init 8 (fun i -> Value.Int i))) in
  let program, f = build sumto_src ~spec_args:[| arr; Value.Int 8 |] () in
  ignore (Pipeline.apply ~program bare f);
  let r = Absint.analyze f in
  (* The induction phi: int-tagged with a non-negative lower bound (the
     upper bound is lost to widening; the loop-exit refinement recovers it
     at query time, which the bounds proof below exercises). *)
  let floors = ref [] in
  Mir.iter_instrs f (fun i ->
      match i.Mir.kind with
      | Mir.Phi _ -> (
        match Absint.int_range (Absint.value_of r i.Mir.def) with
        | Some { Absint.lo; _ } -> floors := lo :: !floors
        | None -> ())
      | _ -> ());
  (match !floors with
  | [] -> Alcotest.fail "no int-ranged phi found"
  | ls ->
    (* The header phi joins the init constant 0 with the step. *)
    Alcotest.(check int) "loop counter floor" 0 (List.fold_left min max_int ls));
  (* Every phi keeps the int tag: the counter never escapes to a boxed
     representation in the abstract state. *)
  List.iter
    (fun lo -> Alcotest.(check bool) "floor is non-negative" true (lo >= 0))
    !floors

let test_constant_branch_prunes () =
  let src = "function f(n) { if (n < 0) { return 7; } return 9; }" in
  let _, f = build src ~spec_args:[| Value.Int 5 |] () in
  let r = Absint.analyze f in
  let block_of c =
    let found = ref None in
    Mir.iter_instrs f (fun i ->
        match i.Mir.kind with
        | Mir.Constant (Value.Int n) when n = c && !found = None ->
          found := Some (Hashtbl.find f.Mir.def_block i.Mir.def)
        | _ -> ());
    match !found with
    | Some b -> b
    | None -> Alcotest.failf "constant %d not found" c
  in
  Alcotest.(check bool) "dead branch not executable" false
    (Absint.block_executable r (block_of 7));
  Alcotest.(check bool) "live branch executable" true
    (Absint.block_executable r (block_of 9))

(* --- guard proofs --- *)

let test_prove_bounds_redundant () =
  let arr = Value.Arr (Value.arr_of_list (List.init 8 (fun i -> Value.Int i))) in
  let program, f = build sumto_src ~spec_args:[| arr; Value.Int 8 |] () in
  ignore (Pipeline.apply ~program bare f);
  let r = Absint.analyze f in
  match find_guard f (function Mir.Bounds_check _ -> true | _ -> false) with
  | Some (bid, idx, i) ->
    Alcotest.(check bool) "i in [0,7] against length 8" true
      (Absint.prove r ~at:(bid, idx) ~exclude:i.Mir.def i.Mir.kind
      = Absint.Redundant)
  | None -> Alcotest.fail "no bounds check after typer"

let test_prove_unprovable_bound () =
  (* Bound 9 exceeds the array length: the loop-exit refinement gives
     i <= 8, which does not fit. *)
  let arr = Value.Arr (Value.arr_of_list (List.init 8 (fun i -> Value.Int i))) in
  let program, f = build sumto_src ~spec_args:[| arr; Value.Int 9 |] () in
  ignore (Pipeline.apply ~program bare f);
  let r = Absint.analyze f in
  match find_guard f (function Mir.Bounds_check _ -> true | _ -> false) with
  | Some (bid, idx, i) ->
    Alcotest.(check bool) "must stay" true
      (Absint.prove r ~at:(bid, idx) ~exclude:i.Mir.def i.Mir.kind
      = Absint.Unknown)
  | None -> Alcotest.fail "no bounds check after typer"

let test_negative_index_keeps_guard () =
  let src = "function g(s) { return s[-1]; }" in
  let arr = Value.Arr (Value.arr_of_list [ Value.Int 1; Value.Int 2 ]) in
  let program, f = build src ~spec_args:[| arr |] () in
  let stats = Pipeline.apply ~program full f in
  Alcotest.(check int) "nothing elided" 0 stats.Pipeline.guards_elided;
  Alcotest.(check bool) "bounds check survives" true
    (count f (function Mir.Bounds_check _ -> true | _ -> false) > 0)

let test_zero_length_array_keeps_guard () =
  let src = "function g(s) { return s[0]; }" in
  let program, f = build src ~spec_args:[| Value.Arr (Value.new_arr 0) |] () in
  ignore (Pipeline.apply ~program full f);
  Alcotest.(check bool) "bounds check survives" true
    (count f (function Mir.Bounds_check _ -> true | _ -> false) > 0)

let test_zero_trip_loop_keeps_guards () =
  (* Regression: a loop whose bound never admits the body (i = 5 while
     i < 3) must not yield a synthetic range that removes the body's
     guards — in either elimination mode. *)
  let src =
    "function z(s) { var t = 0; for (var i = 5; i < 3; i++) t += s[i]; return t; }"
  in
  let arr = Value.Arr (Value.arr_of_list (List.init 8 (fun i -> Value.Int i))) in
  let program, f = build src ~spec_args:[| arr |] () in
  let s =
    Pipeline.apply ~program
      (Pipeline.make ~ps:true ~cp:true ~bce:true ~ge:false "bce")
      f
  in
  Alcotest.(check int) "BCE removes nothing" 0 s.Pipeline.bounds_removed;
  (* Under guard elision the body is proven unreachable, not redundant:
     elision only deletes guards on executable paths. *)
  let program2, f2 = build src ~spec_args:[| arr |] () in
  ignore program2;
  let r = Absint.analyze f2 in
  match find_guard f2 (function Mir.Bounds_check _ -> true | _ -> false) with
  | Some (bid, _, _) ->
    Alcotest.(check bool) "body unreachable under entry key" false
      (Absint.block_executable r bid)
  | None -> () (* generic elem ops before the typer: equally safe *)

let test_guard_elim_elides () =
  let arr = Value.Arr (Value.arr_of_list (List.init 8 (fun i -> Value.Int i))) in
  let program, f = build sumto_src ~spec_args:[| arr; Value.Int 8 |] () in
  let stats = Pipeline.apply ~program full f in
  Alcotest.(check bool) "guards elided" true (stats.Pipeline.guards_elided > 0);
  Alcotest.(check int) "stats match the elision list"
    stats.Pipeline.guards_elided
    (List.length stats.Pipeline.elisions);
  List.iter
    (fun (e : Mir.elision) ->
      Alcotest.(check bool) "elision kind is well-formed" true
        (List.mem e.Mir.el_kind [ "type"; "array"; "bounds" ]))
    stats.Pipeline.elisions;
  Alcotest.(check int) "no bounds checks remain" 0
    (count f (function Mir.Bounds_check _ -> true | _ -> false));
  Verify.run f

let test_survivors_report () =
  let arr = Value.Arr (Value.arr_of_list (List.init 8 (fun i -> Value.Int i))) in
  let program, f = build sumto_src ~spec_args:[| arr; Value.Int 8 |] () in
  ignore (Pipeline.apply ~program bare f);
  (* Nothing has elided yet: every provably redundant guard is a missed
     elision. *)
  let r = Absint.analyze f in
  Alcotest.(check bool) "bare pipeline leaves provable guards" true
    (List.length (Absint.survivors r f) > 0);
  (* The elision pass clears the report. *)
  let program2, f2 = build sumto_src ~spec_args:[| arr; Value.Int 8 |] () in
  ignore (Pipeline.apply ~program:program2 full f2);
  let r2 = Absint.analyze f2 in
  Alcotest.(check int) "full pipeline leaves none" 0
    (List.length (Absint.survivors r2 f2))

(* --- translation validation --- *)

let test_validate_flags_unsound_deletion () =
  let arr = Value.Arr (Value.arr_of_list (List.init 8 (fun i -> Value.Int i))) in
  (* n = 9: the bounds check is NOT redundant (i reaches 8). *)
  let program, f = build sumto_src ~spec_args:[| arr; Value.Int 9 |] () in
  ignore (Pipeline.apply ~program bare f);
  let snap = Guard_elim.snapshot f in
  let pre = Absint.analyze f in
  (match find_guard f (function Mir.Bounds_check _ -> true | _ -> false) with
  | Some (_, _, i) -> remove_def f i.Mir.def
  | None -> Alcotest.fail "no bounds check to delete");
  match Guard_elim.validate ~pass:"evil" ~pre ~snap f with
  | () -> Alcotest.fail "unsound guard deletion accepted"
  | exception Diag.Failed d ->
    Alcotest.(check string) "attributed to the pass" "evil"
      (Option.value d.Diag.pass ~default:"-");
    Alcotest.(check bool) "explains the refusal" true
      (contains d.Diag.message "not provably redundant")

let test_validate_accepts_sound_deletion () =
  let arr = Value.Arr (Value.arr_of_list (List.init 8 (fun i -> Value.Int i))) in
  (* n = 8: the same deletion is provable, so the sandwich stays quiet. *)
  let program, f = build sumto_src ~spec_args:[| arr; Value.Int 8 |] () in
  ignore (Pipeline.apply ~program bare f);
  let snap = Guard_elim.snapshot f in
  let pre = Absint.analyze f in
  (match find_guard f (function Mir.Bounds_check _ -> true | _ -> false) with
  | Some (_, _, i) -> remove_def f i.Mir.def
  | None -> Alcotest.fail "no bounds check to delete");
  Guard_elim.validate ~pass:"fine" ~pre ~snap f

let test_validate_accepts_untouched_graph () =
  let arr = Value.Arr (Value.arr_of_list (List.init 8 (fun i -> Value.Int i))) in
  let program, f = build sumto_src ~spec_args:[| arr; Value.Int 9 |] () in
  ignore (Pipeline.apply ~program bare f);
  let snap = Guard_elim.snapshot f in
  let pre = Absint.analyze f in
  Guard_elim.validate ~pass:"noop" ~pre ~snap f

(* --- differential: elided vs unelided are byte-identical --- *)

let test_elision_differential () =
  let on = Engine.default_config ~opt:Pipeline.all_on () in
  let off =
    Engine.default_config
      ~opt:{ Pipeline.all_on with Pipeline.guard_elim = false }
      ()
  in
  for seed = 0 to 59 do
    let src = Fuzz_gen.any_program (Random.State.make [| 0xab5; seed |]) in
    let a = Fuzz_diff.run on src and b = Fuzz_diff.run off src in
    if a <> b then
      Alcotest.failf "seed %d diverged with guard elision on:\n--- on ---\n%s\n--- off ---\n%s"
        seed a b
  done

(* --- spec_check entry-state audit --- *)

let test_spec_check_entry_audit () =
  let arr = Value.Arr (Value.arr_of_list (List.init 4 (fun i -> Value.Int i))) in
  let _, f = build sumto_src ~spec_args:[| arr; Value.Int 4 |] () in
  Alcotest.(check int) "clean specialized build" 0
    (List.length (Diag.errors (Spec_check.check ~stage:`Built f)));
  (* Drift fixture: the baked constant in the entry block stops matching
     the cached tuple the probe compares against. *)
  (match (Mir.block f f.Mir.entry).Mir.body with
  | _ :: (second : Mir.instr) :: _ -> second.Mir.kind <- Mir.Constant (Value.Int 999)
  | _ -> Alcotest.fail "entry block too short");
  let ds = Diag.errors (Spec_check.check ~stage:`Built f) in
  Alcotest.(check bool) "drift detected" true (List.length ds > 0);
  Alcotest.(check bool) "names the disagreement" true
    (List.exists (fun (d : Diag.t) -> contains d.Diag.message "disagrees") ds)

let suites =
  [
    ( "absint.lattice",
      [
        Alcotest.test_case "join laws." `Quick test_join_laws;
        Alcotest.test_case "vals normalization." `Quick test_vals_normalization;
        Alcotest.test_case "widening terminates." `Quick test_widen_terminates;
      ] );
    ( "absint.analysis",
      [
        Alcotest.test_case "entry state from the cache key." `Quick test_entry_state;
        Alcotest.test_case "induction variable state." `Quick
          test_induction_variable_state;
        Alcotest.test_case "constant branches prune paths." `Quick
          test_constant_branch_prunes;
      ] );
    ( "absint.prove",
      [
        Alcotest.test_case "in-range bounds check is redundant." `Quick
          test_prove_bounds_redundant;
        Alcotest.test_case "out-of-range bound stays unknown." `Quick
          test_prove_unprovable_bound;
        Alcotest.test_case "negative constant index keeps its guard." `Quick
          test_negative_index_keeps_guard;
        Alcotest.test_case "zero-length array keeps its guard." `Quick
          test_zero_length_array_keeps_guard;
        Alcotest.test_case "zero-trip loop keeps its guards." `Quick
          test_zero_trip_loop_keeps_guards;
      ] );
    ( "absint.elide",
      [
        Alcotest.test_case "guard elision fires and balances telemetry." `Quick
          test_guard_elim_elides;
        Alcotest.test_case "missed-guard report (survivors)." `Quick
          test_survivors_report;
        Alcotest.test_case "elided vs unelided byte-identical (60 seeds)." `Slow
          test_elision_differential;
      ] );
    ( "absint.validate",
      [
        Alcotest.test_case "unsound deletion is flagged." `Quick
          test_validate_flags_unsound_deletion;
        Alcotest.test_case "sound deletion is certified." `Quick
          test_validate_accepts_sound_deletion;
        Alcotest.test_case "untouched graph validates." `Quick
          test_validate_accepts_untouched_graph;
        Alcotest.test_case "spec_check audits the entry state." `Quick
          test_spec_check_entry_audit;
      ] );
  ]
