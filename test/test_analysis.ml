(* Tests for the IR lint layer: structured diagnostics, the bytecode
   verifier, the MIR type-consistency check, the specialization-soundness
   checker, and the per-pass pipeline sandwich.

   The negative tests each seed ONE corruption into otherwise-valid IR and
   assert the verifier rejects it with a diagnostic that carries
   attribution (layer, pass, block, value); the positive sweeps assert the
   real workloads are diagnostic-clean. *)

open Runtime

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let check_contains what msg sub =
  Alcotest.(check bool)
    (Printf.sprintf "%s mentions %S (got %S)" what sub msg)
    true (contains msg sub)

(* --- structured diagnostics --- *)

let test_diag_rendering () =
  let d =
    Diag.make ~layer:"mir" ~pass:"gvn" ~func:"f" ~fid:2 ~block:3 ~value:7
      "broken"
  in
  Alcotest.(check string)
    "pretty form" "error[mir/gvn] f(f2) B3 v7: broken" (Diag.to_string d);
  Alcotest.(check string)
    "machine form" "error\tmir\tgvn\tf\t2\t3\t7\t-\tbroken"
    (Diag.to_machine_string d);
  let w = Diag.make ~severity:Diag.Warning ~layer:"spec" "iffy" in
  Alcotest.(check bool) "warning is not error" false (Diag.is_error w);
  Alcotest.(check int) "errors filter" 1 (List.length (Diag.errors [ d; w ]));
  Alcotest.(check int) "warnings filter" 1 (List.length (Diag.warnings [ d; w ]))

(* --- bytecode verifier: hand-built negative programs --- *)

let mk_func ?(arity = 0) ?(nlocals = 0) code =
  {
    Bytecode.Program.fid = 0;
    name = "broken";
    arity;
    nlocals;
    ncells = 0;
    nupvals = 0;
    code;
    max_stack = 8;
    nloops = 0;
  }

let mk_program func =
  { Bytecode.Program.funcs = [| func |]; global_names = [||]; main = 0 }

let expect_bc_diag name code ~arity ~nlocals sub =
  let program = mk_program (mk_func ~arity ~nlocals code) in
  match Bc_verify.run_program program with
  | [] -> Alcotest.failf "%s: verifier accepted malformed bytecode" name
  | d :: _ ->
    Alcotest.(check string) (name ^ " layer") "bytecode" d.Diag.layer;
    check_contains name d.Diag.message sub;
    Alcotest.(check bool) (name ^ " has pc") true (d.Diag.pc <> None)

let test_bc_bad_jump_target () =
  expect_bc_diag "bad target" ~arity:0 ~nlocals:0
    [| Bytecode.Instr.Jump 99 |]
    "jump target"

let test_bc_stack_underflow () =
  expect_bc_diag "underflow" ~arity:0 ~nlocals:0
    [| Bytecode.Instr.Binop Ops.Add; Bytecode.Instr.Return |]
    "stack underflow"

let test_bc_inconsistent_merge () =
  (* pc 3 is reached with depth 0 from the jump and depth 1 from the
     fallthrough: the compiler never emits such code. *)
  expect_bc_diag "merge depth" ~arity:0 ~nlocals:0
    [|
      Bytecode.Instr.Const (Value.Bool true);
      Bytecode.Instr.Jump_if_true 3;
      Bytecode.Instr.Const (Value.Int 1);
      Bytecode.Instr.Return_undefined;
    |]
    "inconsistent stack depth"

let test_bc_bad_slot_index () =
  expect_bc_diag "slot index" ~arity:1 ~nlocals:1
    [| Bytecode.Instr.Get_local 5; Bytecode.Instr.Return |]
    "local index 5 out of bounds"

let test_bc_missing_return () =
  expect_bc_diag "missing return" ~arity:0 ~nlocals:0
    [| Bytecode.Instr.Const (Value.Int 1); Bytecode.Instr.Pop |]
    "falls off the end"

(* Every program the real front end emits must be admissible. *)
let test_bc_clean_on_all_workloads () =
  List.iter
    (fun (suite : Suite.t) ->
      List.iter
        (fun (m : Suite.member) ->
          let program = Bytecode.Compile.program_of_source m.Suite.m_source in
          match Bc_verify.run_program program with
          | [] -> ()
          | d :: _ ->
            Alcotest.failf "%s/%s: %s" suite.Suite.s_name m.Suite.m_name
              (Diag.to_string d))
        suite.Suite.members)
    Suites.all

(* --- MIR verifier: seeded corruptions with attribution --- *)

let map_src =
  {|
function inc(x) { return x + 1; }
function map(s, b, n, f) {
  var i = b;
  while (i < n) { s[i] = f(s[i]); i++; }
  return s;
}
print(map(new Array(1, 2, 3, 4, 5), 2, 5, inc));
|}

let build_fn ?spec_args ?arg_tags src fid =
  let program = Bytecode.Compile.program_of_source src in
  let func = program.Bytecode.Program.funcs.(fid) in
  let f = Builder.build ~program ~func ?spec_args ?arg_tags () in
  Typer.run f;
  Verify.run f;
  Verify.check_types f;
  f

let test_mir_deleted_def_attributed () =
  let f = build_fn map_src 2 in
  (* Delete the defining instruction of some used value, keeping the use. *)
  let victim = ref None in
  Mir.iter_instrs f (fun i ->
      match i.Mir.kind with
      | Mir.Binop (_, a, _, _) when !victim = None -> victim := Some a
      | _ -> ());
  let d = match !victim with Some d -> d | None -> Alcotest.fail "no binop" in
  let db = Hashtbl.find f.Mir.def_block d in
  let b = Mir.block f db in
  b.Mir.body <- List.filter (fun (i : Mir.instr) -> i.Mir.def <> d) b.Mir.body;
  b.Mir.phis <- List.filter (fun (i : Mir.instr) -> i.Mir.def <> d) b.Mir.phis;
  (match Verify.run ~pass:"test-mutation" f with
  | exception Diag.Failed diag ->
    Alcotest.(check string) "layer" "mir" diag.Diag.layer;
    Alcotest.(check (option string)) "pass attributed" (Some "test-mutation")
      diag.Diag.pass;
    Alcotest.(check bool) "block attributed" true (diag.Diag.block <> None)
  | () -> Alcotest.fail "verifier accepted a deleted definition")

let test_mir_phi_arity_attributed () =
  let f = build_fn map_src 2 in
  let corrupted = ref false in
  Hashtbl.iter
    (fun _ b ->
      List.iter
        (fun (phi : Mir.instr) ->
          match phi.Mir.kind with
          | Mir.Phi ops when Array.length ops > 1 && not !corrupted ->
            phi.Mir.kind <- Mir.Phi (Array.sub ops 0 (Array.length ops - 1));
            corrupted := true
          | _ -> ())
        b.Mir.phis)
    f.Mir.blocks;
  Alcotest.(check bool) "did corrupt" true !corrupted;
  match Verify.run ~pass:"test-mutation" f with
  | exception Diag.Failed diag ->
    check_contains "phi arity" diag.Diag.message "operands";
    Alcotest.(check bool) "value attributed" true (diag.Diag.value <> None)
  | () -> Alcotest.fail "verifier accepted a phi/pred arity mismatch"

let test_mir_stripped_rp_attributed () =
  let f =
    build_fn ~arg_tags:Value.[| Some Tag_array; None; None; None |] map_src 2
  in
  let stripped = ref false in
  Mir.iter_instrs f (fun i ->
      if (not !stripped) && Mir.is_guard i.Mir.kind then begin
        i.Mir.rp <- None;
        stripped := true
      end);
  Alcotest.(check bool) "did strip" true !stripped;
  match Verify.run ~pass:"test-mutation" f with
  | exception Diag.Failed diag ->
    check_contains "missing rp" diag.Diag.message "resume point"
  | () -> Alcotest.fail "verifier accepted a guard without a resume point"

let test_mir_type_lie_rejected () =
  let f = build_fn map_src 2 in
  (* Claim a call returns Int32: no re-inference can support that. *)
  let lied = ref false in
  Mir.iter_instrs f (fun i ->
      match i.Mir.kind with
      | Mir.Call _ when not !lied ->
        i.Mir.ty <- Mir.Ty_int32;
        lied := true
      | _ -> ());
  Alcotest.(check bool) "did lie" true !lied;
  match Verify.check_types ~pass:"test-mutation" f with
  | exception Diag.Failed diag ->
    check_contains "type lie" diag.Diag.message "declares type";
    Alcotest.(check (option string)) "pass attributed" (Some "test-mutation")
      diag.Diag.pass
  | () -> Alcotest.fail "type check accepted an unsupportable declared type"

(* --- specialization-soundness checker --- *)

let sample_array n = Value.Arr (Value.arr_of_list (List.init n (fun i -> Value.Int i)))

let spec_args_for_map () =
  [|
    sample_array 5; Value.Int 2; Value.Int 5;
    Value.Closure { Value.fid = 1; env = [||]; cid = Value.fresh_id () };
  |]

let test_spec_baked_constant_disagrees () =
  let program = Bytecode.Compile.program_of_source map_src in
  let func = program.Bytecode.Program.funcs.(2) in
  let f = Builder.build ~program ~func ~spec_args:(spec_args_for_map ()) () in
  (* Corrupt the cache tuple after the build: the baked constants in the
     entry block now disagree with what a cache probe would compare. *)
  let args = spec_args_for_map () in
  args.(1) <- Value.Int 99;
  f.Mir.specialized_args <- Some args;
  let errs = Diag.errors (Spec_check.check ~stage:`Built f) in
  Alcotest.(check bool) "rejected" true (errs <> []);
  check_contains "disagreement" (List.hd errs).Diag.message "disagrees"

let test_spec_parameter_at_burned_position () =
  let program = Bytecode.Compile.program_of_source map_src in
  let func = program.Bytecode.Program.funcs.(2) in
  (* A generic build loads every argument as a runtime Parameter; claiming
     afterwards that the args were burned in must be flagged. *)
  let f = Builder.build ~program ~func () in
  f.Mir.specialized_args <- Some (spec_args_for_map ());
  let errs = Diag.errors (Spec_check.check ~stage:`Built f) in
  Alcotest.(check bool) "rejected" true (errs <> []);
  check_contains "burned parameter" (List.hd errs).Diag.message
    "burned into the cache tuple"

let test_spec_clean_on_specialized_build () =
  let program = Bytecode.Compile.program_of_source map_src in
  let func = program.Bytecode.Program.funcs.(2) in
  let f = Builder.build ~program ~func ~spec_args:(spec_args_for_map ()) () in
  Alcotest.(check int) "no errors on a faithful build" 0
    (List.length (Diag.errors (Spec_check.check ~stage:`Built f)))

let test_spec_dead_rp_warning () =
  (* The builder attaches resume points liberally; on instructions that can
     never bail (calls, generic element traffic) they are dead weight and
     must surface as warnings, never errors. *)
  let f = build_fn map_src 2 in
  let ds = Spec_check.check ~stage:`Optimized f in
  Alcotest.(check int) "no errors" 0 (List.length (Diag.errors ds));
  let dead =
    List.filter (fun d -> contains d.Diag.message "dead resume point") ds
  in
  Alcotest.(check bool) "dead-rp warnings present" true (dead <> []);
  List.iter
    (fun d -> Alcotest.(check bool) "is warning" true (Diag.is_warning d))
    dead

let test_spec_redundant_guard_warning () =
  let f =
    build_fn ~arg_tags:Value.[| Some Tag_array; None; None; None |] map_src 2
  in
  (* Duplicate an existing guard right after itself. *)
  let placed = ref false in
  List.iter
    (fun bid ->
      let b = Mir.block f bid in
      if not !placed then
        b.Mir.body <-
          List.concat_map
            (fun (i : Mir.instr) ->
              if (not !placed) && Mir.is_guard i.Mir.kind then begin
                placed := true;
                let dup = Mir.make_instr f bid ?rp:i.Mir.rp i.Mir.kind in
                [ i; dup ]
              end
              else [ i ])
            b.Mir.body)
    f.Mir.block_order;
  Alcotest.(check bool) "did duplicate" true !placed;
  let warns = Diag.warnings (Spec_check.check ~stage:`Optimized f) in
  Alcotest.(check bool) "redundant guard flagged" true
    (List.exists (fun d -> contains d.Diag.message "redundant guard") warns)

(* --- pipeline sandwich + end-to-end sweeps --- *)

let test_pipeline_sandwich_clean_on_all_on () =
  let program = Bytecode.Compile.program_of_source map_src in
  let func = program.Bytecode.Program.funcs.(2) in
  let f = Builder.build ~program ~func ~spec_args:(spec_args_for_map ()) () in
  ignore (Pipeline.apply ~check:true ~program Pipeline.all_on f)

(* One member per suite under the kitchen-sink config with every per-pass
   check enabled; bin/irlint covers the full workload x config matrix. The
   engine contains mid-run compile diagnostics (quarantine + interpreter
   fallback) rather than raising, so corruption is observed through
   [Engine.diag_abort_hook]; [Diag.Failed] can still escape [Engine.make]'s
   bytecode admission check. *)
let test_engine_checked_sweep () =
  let aborted = ref None in
  Pipeline.with_checks true @@ fun () ->
  Engine.with_diag_abort_hook
    (fun d -> if !aborted = None then aborted := Some d)
    (fun () ->
      List.iter
        (fun (suite : Suite.t) ->
          match suite.Suite.members with
          | [] -> ()
          | m :: _ -> (
            let cfg = Engine.default_config ~opt:Pipeline.all_on () in
            aborted := None;
            match
              Runner.quiet (fun () -> Engine.run_source cfg m.Suite.m_source)
            with
            | _ -> (
              match !aborted with
              | None -> ()
              | Some d ->
                Alcotest.failf "%s/%s: compile aborted: %s" suite.Suite.s_name
                  m.Suite.m_name (Diag.to_string d))
            | exception Diag.Failed d ->
              Alcotest.failf "%s/%s: %s" suite.Suite.s_name m.Suite.m_name
                (Diag.to_string d)))
        Suites.all)

let suites =
  [
    ( "analysis.diag",
      [ Alcotest.test_case "rendering and filters" `Quick test_diag_rendering ]
    );
    ( "analysis.bc_verify",
      [
        Alcotest.test_case "rejects bad jump target" `Quick test_bc_bad_jump_target;
        Alcotest.test_case "rejects stack underflow" `Quick test_bc_stack_underflow;
        Alcotest.test_case "rejects inconsistent merge depth" `Quick
          test_bc_inconsistent_merge;
        Alcotest.test_case "rejects bad slot index" `Quick test_bc_bad_slot_index;
        Alcotest.test_case "rejects missing return" `Quick test_bc_missing_return;
        Alcotest.test_case "clean on every workload" `Slow
          test_bc_clean_on_all_workloads;
      ] );
    ( "analysis.mir_lint",
      [
        Alcotest.test_case "deleted def attributed" `Quick
          test_mir_deleted_def_attributed;
        Alcotest.test_case "phi arity attributed" `Quick test_mir_phi_arity_attributed;
        Alcotest.test_case "stripped rp attributed" `Quick
          test_mir_stripped_rp_attributed;
        Alcotest.test_case "declared-type lie rejected" `Quick
          test_mir_type_lie_rejected;
      ] );
    ( "analysis.spec_check",
      [
        Alcotest.test_case "baked constant disagreement" `Quick
          test_spec_baked_constant_disagrees;
        Alcotest.test_case "parameter at burned position" `Quick
          test_spec_parameter_at_burned_position;
        Alcotest.test_case "faithful build is clean" `Quick
          test_spec_clean_on_specialized_build;
        Alcotest.test_case "dead resume points are warnings" `Quick
          test_spec_dead_rp_warning;
        Alcotest.test_case "redundant guard is a warning" `Quick
          test_spec_redundant_guard_warning;
      ] );
    ( "analysis.pipeline",
      [
        Alcotest.test_case "sandwich clean under all_on" `Quick
          test_pipeline_sandwich_clean_on_all_on;
        Alcotest.test_case "checked engine sweep" `Slow test_engine_checked_sweep;
      ] );
  ]
