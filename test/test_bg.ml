(* Background-compilation tests: the queue's deterministic completion
   model (fixed-width FIFO service, exact ready cycles), the engine integration
   (hot-call sites never charge synchronous compile cycles; artifacts
   land at harvest; loop-edge OSR into finished binaries; stale-snapshot
   refusal), the re-specialization drift loop (supersede-at-install), the
   bg fault points, degrade-mode drain/suppression, and --jobs
   byte-identity of the whole report. *)

open Runtime

let run ?(cfg = Engine.default_config ~opt:Pipeline.all_on ()) ?(sinks = []) src =
  let buf = Buffer.create 64 in
  Builtins.with_print_hook
    (fun s -> Buffer.add_string buf s; Buffer.add_char buf '\n')
    (fun () ->
      let engine = Engine.make cfg (Bytecode.Compile.program_of_source src) in
      List.iter (Telemetry.attach (Engine.telemetry engine)) sinks;
      let report = Engine.run engine in
      (engine, report, Buffer.contents buf))

let bg_cfg ?policy ?(depth = 8) () =
  Engine.default_config ~opt:Pipeline.all_on ?policy ~bg_compile:true ~bg_queue_depth:depth ()

let total engine name = Telemetry.Counters.total (Telemetry.counters (Engine.telemetry engine)) name

let fn report name =
  List.find (fun (f : Engine.func_report) -> f.Engine.fr_name = name) report.Engine.functions

(* Hot by calls only: 30 toplevel iterations stay under the 40-edge OSR
   threshold, so the one compile in either mode is the call-path compile
   of [f] with the same pipeline — the charges must agree to the cycle. *)
let call_hot_src =
  "function f(x) { return (x * 3 + 1) | 0; }\n\
   var t = 0;\n\
   for (var i = 0; i < 30; i++) t = (t + f(5)) | 0;\n\
   print(t);"

(* Hot loops on both tiers: the toplevel loop (globals only) and a
   local-counter loop inside [work]. Queued OSR compiles keep their
   locals as live loads ([osr_bake_locals] off), so the counter having
   advanced by the ready cycle is the expected case and both loops
   transfer into their finished binaries mid-flight. *)
let loop_src =
  "function work(n, k) {\n\
  \  var s = 0;\n\
  \  for (var i = 0; i < n; i = i + 1) { s = s + i * k; }\n\
  \  return s;\n\
   }\n\
   var total = 0;\n\
   for (var j = 0; j < 60; j = j + 1) { total = total + work(200, 3); }\n\
   print(total);"

(* --- the queue's completion model (unit) ----------------------------- *)

let test_queue_model () =
  Alcotest.(check int) "model width is a fixed constant" 4 Bgcompile.service_width;
  let q = Bgcompile.create ~depth:5 in
  (* Four requests at the same cycle: one per virtual server, none queues. *)
  let costs = [| 50; 30; 40; 20 |] in
  let entries =
    Array.mapi
      (fun i c ->
        Result.get_ok (Bgcompile.enqueue q ~fid:i ~now:100 ~cost:c (string_of_int i)))
      costs
  in
  Array.iteri
    (fun i c ->
      Alcotest.(check int)
        (Printf.sprintf "server %d starts at enqueue" i)
        (100 + c) entries.(i).Bgcompile.e_ready)
    costs;
  (* A fifth request finds the whole crew busy and queues behind the
     earliest-free server (fid 3's, free at 120). *)
  let e5 = Result.get_ok (Bgcompile.enqueue q ~fid:4 ~now:110 ~cost:30 "4") in
  Alcotest.(check int) "FIFO behind the earliest-free server" 150 e5.Bgcompile.e_ready;
  Alcotest.(check int) "five in flight" 5 (Bgcompile.length q);
  (match Bgcompile.enqueue q ~fid:5 ~now:110 ~cost:1 "x" with
  | Error `Overflow -> ()
  | Ok _ -> Alcotest.fail "expected overflow at depth 5");
  (* Not ready yet for fid 0 at cycle 149; ready at 150. *)
  Alcotest.(check int) "not ready early" 0 (List.length (Bgcompile.take_ready q ~fid:0 ~now:149));
  (match Bgcompile.take_ready q ~fid:0 ~now:150 with
  | [ e ] -> Alcotest.(check string) "payload" "0" e.Bgcompile.e_payload
  | l -> Alcotest.fail (Printf.sprintf "expected 1 ready, got %d" (List.length l)));
  (* take_ready is per-fid: the others are untouched. An enqueue after
     the crew went idle starts fresh, and drain returns everything in
     enqueue order. *)
  Alcotest.(check int) "four left" 4 (Bgcompile.length q);
  let e6 = Result.get_ok (Bgcompile.enqueue q ~fid:6 ~now:500 ~cost:10 "5") in
  Alcotest.(check int) "idle again" 510 e6.Bgcompile.e_ready;
  let drained = Bgcompile.drain q in
  Alcotest.(check (list string)) "drain in enqueue order" [ "1"; "2"; "3"; "4"; "5" ]
    (List.map (fun e -> e.Bgcompile.e_payload) drained);
  Alcotest.(check int) "empty after drain" 0 (Bgcompile.length q)

let test_queue_depth_clamped () =
  let q = Bgcompile.create ~depth:0 in
  Alcotest.(check int) "depth clamps to 1" 1 (Bgcompile.depth q)

(* --- the engine's two clocks ----------------------------------------- *)

let test_bg_never_charges_the_model_clock () =
  let _, sync_report, sync_out = run call_hot_src in
  let _, bg_report, bg_out = run ~cfg:(bg_cfg ()) call_hot_src in
  Alcotest.(check string) "same program output" sync_out bg_out;
  Alcotest.(check int) "no synchronous compile cycles" 0 bg_report.Engine.compile_cycles;
  (* Same function, same pipeline, same policy decision — the modeled
     compile work is identical, it just moved off the requester's clock. *)
  Alcotest.(check int) "off-clock charge equals the sync charge"
    sync_report.Engine.compile_cycles bg_report.Engine.bg_compile_cycles;
  Alcotest.(check bool) "the function did compile" true
    ((fn bg_report "f").Engine.fr_compiles >= 1);
  Alcotest.(check int) "sync mode charges nothing off-clock" 0
    sync_report.Engine.bg_compile_cycles

let test_bg_off_is_default () =
  let cfg = Engine.default_config () in
  Alcotest.(check bool) "bg off by default" false cfg.Engine.bg_compile;
  let engine, report, _ = run call_hot_src in
  Alcotest.(check int) "no bg cycles" 0 report.Engine.bg_compile_cycles;
  Alcotest.(check int) "no bg counters" 0 (total engine Telemetry.Key.bg_queued);
  Alcotest.(check int) "nothing in flight" 0 (Engine.bg_in_flight engine)

let test_enqueue_and_ready_events () =
  let ring = Telemetry.Ring.create 4096 in
  let engine, _, _ = run ~cfg:(bg_cfg ()) ~sinks:[ Telemetry.Ring.sink ring ] call_hot_src in
  let events k =
    List.filter (fun e -> Telemetry.event_kind e = k) (Telemetry.Ring.contents ring)
  in
  let enqueues = events "compile_enqueue" and readies = events "compile_ready" in
  Alcotest.(check bool) "at least one enqueue" true (List.length enqueues >= 1);
  Alcotest.(check int) "every enqueue eventually installed"
    (List.length enqueues) (List.length readies);
  Alcotest.(check int) "counters agree with the events"
    (List.length readies) (total engine Telemetry.Key.bg_installed);
  Alcotest.(check int) "queue fully drained by the end" 0 (Engine.bg_in_flight engine)

(* --- loop-edge OSR into a finished binary ---------------------------- *)

let test_osr_entry_and_stale_refusal () =
  let engine, report, out = run ~cfg:(bg_cfg ()) loop_src in
  Alcotest.(check string) "result" "3582000\n" out;
  (* Both hot loops — the toplevel one and work's local-counter one —
     transfer into their binaries: locals are live loads on a queued OSR
     path, so the advanced counter matches by construction. *)
  Alcotest.(check int) "both in-flight loops entered their binaries" 2
    (total engine Telemetry.Key.bg_osr_entries);
  Alcotest.(check int) "nothing was stale" 0 (total engine Telemetry.Key.bg_osr_stale);
  Alcotest.(check int) "no synchronous compile cycles" 0 report.Engine.compile_cycles;
  Alcotest.(check bool) "work compiled" true ((fn report "work").Engine.fr_compiles >= 1);
  (* Staleness that remains: a specialized compile bakes the *argument*
     values it saw at the snapshot through the body, so a loop that
     reassigns its own parameter has drifted past the burned-in value by
     the ready cycle and entry must be refused — while the artifact still
     installs and serves later calls through its guarded normal entry. *)
  let churn_src =
    "function churn(n, k) { var s = 0;\n\
    \  for (var i = 0; i < n; i = i + 1) { k = k + 1; s = s + k; }\n\
    \  return s; }\n\
     var total = 0;\n\
     for (var j = 0; j < 3; j = j + 1) { total = total + churn(300, 1); }\n\
     print(total);"
  in
  let engine, report, out = run ~cfg:(bg_cfg ()) churn_src in
  Alcotest.(check string) "churn result" "136350\n" out;
  Alcotest.(check bool) "the drifted baked arg was refused" true
    (total engine Telemetry.Key.bg_osr_stale >= 1);
  Alcotest.(check bool) "the refused artifact still installed" true
    (total engine Telemetry.Key.bg_installed >= 1);
  Alcotest.(check bool) "churn compiled anyway" true
    ((fn report "churn").Engine.fr_compiles >= 1)

let test_osr_entry_events_match_counter () =
  let ring = Telemetry.Ring.create 4096 in
  let engine, _, _ = run ~cfg:(bg_cfg ()) ~sinks:[ Telemetry.Ring.sink ring ] loop_src in
  let entries =
    List.filter (fun e -> Telemetry.event_kind e = "osr_entry") (Telemetry.Ring.contents ring)
  in
  Alcotest.(check int) "one Osr_entry event per counted entry"
    (total engine Telemetry.Key.bg_osr_entries)
    (List.length entries)

(* --- overflow and per-function dedupe -------------------------------- *)

let test_queue_overflow_drops () =
  (* Depth 1 with several functions going hot at once: at most one can be
     in flight, so the rest are dropped and counted. *)
  let src =
    "function a(x) { return (x + 1) | 0; }\n\
     function b(x) { return (x + 2) | 0; }\n\
     function c(x) { return (x + 3) | 0; }\n\
     var t = 0;\n\
     for (var i = 0; i < 40; i++) t = (t + a(1) + b(2) + c(3)) | 0;\n\
     print(t);"
  in
  let engine, report, _ = run ~cfg:(bg_cfg ~depth:1 ()) src in
  Alcotest.(check bool) "overflow counted" true (total engine Telemetry.Key.bg_overflow >= 1);
  Alcotest.(check int) "still no synchronous compile cycles" 0 report.Engine.compile_cycles

let test_one_in_flight_per_function () =
  (* A hot function keeps getting called while its request is queued; the
     dedupe admits exactly one entry, so bg.queued counts distinct
     requests, not hot calls. *)
  let engine, _, _ = run ~cfg:(bg_cfg ()) call_hot_src in
  let queued = total engine Telemetry.Key.bg_queued in
  let installed = total engine Telemetry.Key.bg_installed in
  Alcotest.(check int) "every queued request installs exactly once" queued installed

(* --- the re-specialization drift loop -------------------------------- *)

let test_supersede_on_operand_drift () =
  (* Polyvariant: a caller-anticipated values version first (the hot-call
     tier is otherwise a generic catch-all, which never misses), then
     same-tag drift — the miss widens values→tags through the queue; the
     victim keeps serving until its replacement lands, then is detached.
     The [use] toggle keeps f cold until c's binary (and its f(5) call-
     site fact) has landed. *)
  let src =
    "function f(x) { return (x + 1) | 0; }\n\
     var use = 0;\n\
     function c() { if (use == 1) { return f(5); } return 0; }\n\
     var t = 0;\n\
     for (var i = 0; i < 20; i++) t = (t + c()) | 0;\n\
     use = 1;\n\
     for (var i = 0; i < 20; i++) t = (t + c()) | 0;\n\
     for (var i = 0; i < 80; i++) t = (t + f(9)) | 0;\n\
     print(t);"
  in
  let engine, report, out = run ~cfg:(bg_cfg ~policy:Policy.Polyvariant ()) src in
  Alcotest.(check string) "result" "920\n" out;
  Alcotest.(check bool) "a version was superseded" true
    (total engine Telemetry.Key.bg_superseded >= 1);
  Alcotest.(check bool) "the widen was counted" true
    (total engine Telemetry.Key.versions_widened >= 1);
  Alcotest.(check int) "drift never stalled the requester" 0 report.Engine.compile_cycles

(* --- fault points ----------------------------------------------------- *)

let test_bg_enqueue_fault_drops_request () =
  let plan = Faults.make ~seed:3 [ (Faults.Bg_enqueue, Faults.Nth 1) ] in
  let fired = ref [] in
  let engine, report, out =
    Faults.with_fired_hook
      (fun p -> fired := p :: !fired)
      (fun () -> Faults.with_plan plan (fun () -> run ~cfg:(bg_cfg ()) call_hot_src))
  in
  Alcotest.(check bool) "the fault fired" true (List.mem Faults.Bg_enqueue !fired);
  Alcotest.(check bool) "the drop was counted" true
    (total engine Telemetry.Key.bg_cancelled >= 1);
  (* The function stays interpreted until a later hot call retries; the
     program output is unaffected either way. *)
  let _, _, sync_out = run call_hot_src in
  ignore report;
  Alcotest.(check string) "output unaffected" sync_out out

let test_bg_install_fault_reenqueues_with_backoff () =
  let plan = Faults.make ~seed:3 [ (Faults.Bg_install, Faults.Nth 1) ] in
  let ring = Telemetry.Ring.create 4096 in
  let fired = ref [] in
  let engine, _, out =
    Faults.with_fired_hook
      (fun p -> fired := p :: !fired)
      (fun () ->
        Faults.with_plan plan (fun () ->
            run ~cfg:(bg_cfg ()) ~sinks:[ Telemetry.Ring.sink ring ] call_hot_src))
  in
  Alcotest.(check bool) "the install fault fired" true (List.mem Faults.Bg_install !fired);
  (* The dropped artifact re-enqueued (a second bg.queued) at doubled
     modeled cost, and the redo landed. *)
  Alcotest.(check bool) "re-enqueued" true (total engine Telemetry.Key.bg_queued >= 2);
  Alcotest.(check bool) "the redo installed" true
    (total engine Telemetry.Key.bg_installed >= 1);
  let cancels =
    List.filter
      (fun e -> Telemetry.event_kind e = "compile_cancel")
      (Telemetry.Ring.contents ring)
  in
  Alcotest.(check bool) "the drop emitted Compile_cancel" true (List.length cancels >= 1);
  let _, _, sync_out = run call_hot_src in
  Alcotest.(check string) "output unaffected" sync_out out

(* --- degrade drains and suppresses ----------------------------------- *)

let test_degrade_suppresses_the_queue () =
  let buf = Buffer.create 64 in
  let engine, report =
    Builtins.with_print_hook
      (fun s -> Buffer.add_string buf s; Buffer.add_char buf '\n')
      (fun () ->
        let engine =
          Engine.make (bg_cfg ()) (Bytecode.Compile.program_of_source call_hot_src)
        in
        Engine.set_degrade engine true;
        let report = Engine.run engine in
        (engine, report))
  in
  (* Degrade falls back to the synchronous overload semantics: nothing is
     queued and compiles (if any) charge the model clock as before. *)
  Alcotest.(check int) "nothing queued under degrade" 0 (total engine Telemetry.Key.bg_queued);
  Alcotest.(check int) "no off-clock work" 0 report.Engine.bg_compile_cycles;
  Alcotest.(check bool) "the degraded compile was synchronous" true
    (report.Engine.compile_cycles > 0)

let test_degrade_transition_drains_in_flight () =
  (* Make a function hot at the very tail so its request is still in
     flight when the program ends; entering degrade must cancel it. *)
  let src =
    "function f(x) { return (x + 1) | 0; }\n\
     var t = 0;\n\
     for (var i = 0; i < 11; i++) t = (t + f(4)) | 0;\n\
     print(t);"
  in
  let engine, _, _ = run ~cfg:(bg_cfg ()) src in
  Alcotest.(check int) "one request still in flight" 1 (Engine.bg_in_flight engine);
  Engine.set_degrade engine true;
  Alcotest.(check int) "drained on the transition" 0 (Engine.bg_in_flight engine);
  Alcotest.(check int) "the cancel was counted" 1 (total engine Telemetry.Key.bg_cancelled);
  (* Explicit drain (the recycle path) on an empty queue is a no-op. *)
  Alcotest.(check int) "drain_bg after drain" 0 (Engine.drain_bg engine)

(* --- --jobs byte-identity -------------------------------------------- *)

let report_fingerprint (r : Engine.report) =
  ( Value.to_display_string r.Engine.result,
    ( r.Engine.interp_cycles,
      r.Engine.native_cycles,
      r.Engine.compile_cycles,
      r.Engine.bg_compile_cycles,
      r.Engine.total_cycles ),
    r.Engine.bytecode_instrs,
    List.map
      (fun (f : Engine.func_report) -> (f.Engine.fr_name, f.Engine.fr_compiles, f.Engine.fr_sizes))
      r.Engine.functions )

let with_jobs n f =
  let saved = Pool.default_jobs () in
  Pool.set_default_jobs n;
  Fun.protect ~finally:(fun () -> Pool.set_default_jobs saved) f

let test_jobs_determinism () =
  let counters_of engine =
    Telemetry.Counters.rows (Telemetry.counters (Engine.telemetry engine))
  in
  let at_jobs n =
    with_jobs n (fun () ->
        let engine, report, out = run ~cfg:(bg_cfg ~policy:Policy.Polyvariant ()) loop_src in
        (out, report_fingerprint report, counters_of engine))
  in
  let out1, fp1, c1 = at_jobs 1 in
  let out4, fp4, c4 = at_jobs 4 in
  Alcotest.(check string) "output identical across --jobs" out1 out4;
  Alcotest.(check bool) "report identical across --jobs" true (fp1 = fp4);
  Alcotest.(check (list (pair string int))) "every counter identical across --jobs" c1 c4

let suites =
  [
    ( "bgcompile",
      [
        Alcotest.test_case "queue completion model" `Quick test_queue_model;
        Alcotest.test_case "depth clamped" `Quick test_queue_depth_clamped;
        Alcotest.test_case "bg never charges the model clock" `Quick
          test_bg_never_charges_the_model_clock;
        Alcotest.test_case "bg off is the default" `Quick test_bg_off_is_default;
        Alcotest.test_case "enqueue/ready events" `Quick test_enqueue_and_ready_events;
        Alcotest.test_case "OSR entry and stale refusal" `Quick
          test_osr_entry_and_stale_refusal;
        Alcotest.test_case "OSR events match counter" `Quick
          test_osr_entry_events_match_counter;
        Alcotest.test_case "queue overflow drops" `Quick test_queue_overflow_drops;
        Alcotest.test_case "one in flight per function" `Quick
          test_one_in_flight_per_function;
        Alcotest.test_case "supersede on operand drift" `Quick
          test_supersede_on_operand_drift;
        Alcotest.test_case "bg_enqueue fault drops" `Quick test_bg_enqueue_fault_drops_request;
        Alcotest.test_case "bg_install fault re-enqueues" `Quick
          test_bg_install_fault_reenqueues_with_backoff;
        Alcotest.test_case "degrade suppresses the queue" `Quick
          test_degrade_suppresses_the_queue;
        Alcotest.test_case "degrade transition drains" `Quick
          test_degrade_transition_drains_in_flight;
        Alcotest.test_case "--jobs byte-identity" `Quick test_jobs_determinism;
      ] );
  ]
