(* Engine-level tests: the hotness policy, the specialization cache, the
   deoptimize-and-blacklist life cycle (paper §4), OSR, and bailout
   resumption. *)

open Runtime

let run ?(cfg = Engine.default_config ~opt:Pipeline.all_on ()) src =
  let buf = Buffer.create 64 in
  Builtins.with_print_hook
    (fun s -> Buffer.add_string buf s; Buffer.add_char buf '\n')
    (fun () ->
      let report = Engine.run_source cfg src in
      (report, Buffer.contents buf))

let fn report name =
  List.find (fun (f : Engine.func_report) -> f.Engine.fr_name = name) report.Engine.functions

let test_cold_functions_never_compile () =
  let report, _ = run "function f(x) { return x + 1; } print(f(1) + f(2));" in
  Alcotest.(check int) "no compiles" 0 (fn report "f").Engine.fr_compiles

let test_hot_function_compiles_specialized () =
  let report, out =
    run "function f(x) { return x + 1; } var t = 0; for (var i = 0; i < 40; i++) t += f(7); print(t);"
  in
  Alcotest.(check string) "result" "320\n" out;
  let f = fn report "f" in
  Alcotest.(check bool) "compiled" true (f.Engine.fr_compiles >= 1);
  Alcotest.(check bool) "specialized" true f.Engine.fr_was_specialized;
  Alcotest.(check bool) "never deoptimized (same args throughout)" true
    (not f.Engine.fr_deoptimized)

let test_deopt_and_blacklist () =
  (* Hot with the same argument, then a different argument: discard,
     recompile generic, never specialize again. *)
  let report, out =
    run
      "function f(x) { return x * 2; } var t = 0;\n\
       for (var i = 0; i < 30; i++) t += f(5);\n\
       for (var i = 0; i < 30; i++) t += f(i);\n\
       print(t);"
  in
  Alcotest.(check string) "result" (string_of_int ((30 * 10) + (29 * 30)) ^ "\n") out;
  let f = fn report "f" in
  Alcotest.(check bool) "was specialized" true f.Engine.fr_was_specialized;
  Alcotest.(check bool) "deoptimized" true f.Engine.fr_deoptimized;
  Alcotest.(check bool) "recompiled at least once" true (f.Engine.fr_compiles >= 2);
  (* After the deopt, only generic compiles may follow. *)
  let rec check_tail = function
    | [] -> ()
    | (true, _) :: rest ->
      Alcotest.(check bool) "specialized compile precedes generic ones" true
        (List.for_all (fun (s, _) -> not s) rest);
      check_tail rest
    | (false, _) :: rest -> check_tail rest
  in
  check_tail f.Engine.fr_sizes

let test_cache_hit_on_same_args () =
  (* Same arguments on every call: one specialized compile, zero deopts. *)
  let report, _ =
    run
      "function f(a, b) { return a + b; } var t = 0;\n\
       for (var i = 0; i < 100; i++) t += f(3, 4); print(t);"
  in
  let f = fn report "f" in
  Alcotest.(check int) "exactly one compile" 1 f.Engine.fr_compiles;
  Alcotest.(check bool) "no deopt" true (not f.Engine.fr_deoptimized)

let test_object_identity_cache () =
  (* The cache compares heap arguments by identity: the same object hits,
     a structurally-equal fresh object misses. *)
  let report, _ =
    run
      "function get(o) { return o.v; } var o1 = {v: 1};\n\
       for (var i = 0; i < 30; i++) get(o1);\n\
       get({v: 1});\n\
       print(0);"
  in
  let f = fn report "get" in
  Alcotest.(check bool) "deoptimized by fresh object" true f.Engine.fr_deoptimized

let test_osr_compiles_hot_loop () =
  (* A single call with a long loop must be OSR-compiled mid-execution. *)
  let report, out =
    run "function f(n) { var t = 0; for (var i = 0; i < n; i++) t = (t + i) | 0; return t; } print(f(5000));"
  in
  Alcotest.(check string) "result" "12497500\n" out;
  let f = fn report "f" in
  Alcotest.(check bool) "compiled despite single call" true (f.Engine.fr_compiles >= 1);
  Alcotest.(check bool) "interp + native both ran" true
    (report.Engine.native_cycles > 0 && report.Engine.interp_cycles > 0)

let test_toplevel_osr () =
  let report, out =
    run "var t = 0; for (var i = 0; i < 5000; i++) t = (t + 2) | 0; print(t);"
  in
  Alcotest.(check string) "result" "10000\n" out;
  Alcotest.(check bool) "toplevel compiled via OSR" true (report.Engine.compilations >= 1)

let test_osr_in_for_in_loop () =
  (* A hot for-in enumeration OSR-compiles mid-loop: the desugared keys
     array and index live in hidden locals that the OSR block must bake or
     type from the frame correctly. *)
  let src =
    "var o = {};\n\
     for (var i = 0; i < 600; i++) o[\"k\" + i] = i;\n\
     var t = 0;\n\
     for (var k in o) t = (t + o[k] + k.length) | 0;\n\
     print(t);"
  in
  let report, out = run src in
  let _, expected = run ~cfg:Engine.interp_only src in
  Alcotest.(check string) "matches interpreter" expected out;
  Alcotest.(check bool) "toplevel OSR-compiled" true (report.Engine.compilations >= 1);
  Alcotest.(check bool) "native code actually ran" true (report.Engine.native_cycles > 0)

let test_bailout_resumes_correctly () =
  (* Array access goes out of bounds only in the final iterations: native
     code bails and the interpreter finishes with JS semantics
     (undefined + int = NaN -> | 0 -> 0). *)
  let _, out =
    run
      "function f(s, n) { var t = 0; for (var i = 0; i < n; i++) t = (t + s[i]) | 0; return t; }\n\
       var a = [1, 2, 3, 4];\n\
       var r = 0;\n\
       for (var k = 0; k < 30; k++) r = f(a, 4);\n\
       r += f(a, 6);\n\
       print(r);"
  in
  (* r is overwritten (not accumulated) in the warm loop, so the final value
     is f(a,4) + f(a,6) where the OOB tail zeroes the accumulator via
     (10 + undefined) | 0 = 0. *)
  Alcotest.(check string) "bailout preserved semantics" "10\n" out

let test_bailout_counter_discards () =
  let cfg = { (Engine.default_config ()) with Engine.max_bailouts = 1 } in
  let report, _ =
    run ~cfg
      "function f(s, i) { return s[i]; } var a = [1, 2, 3];\n\
       var t = 0;\n\
       for (var k = 0; k < 20; k++) t += f(a, 1);\n\
       for (var k = 0; k < 5; k++) f(a, 99);\n\
       print(t);"
  in
  let f = fn report "f" in
  Alcotest.(check bool) "bailed repeatedly" true (f.Engine.fr_bailouts >= 2);
  Alcotest.(check bool) "binary discarded and recompiled" true (f.Engine.fr_compiles >= 2)

let test_interp_only_never_compiles () =
  let report, _ =
    run ~cfg:Engine.interp_only
      "function f(x) { return x; } for (var i = 0; i < 200; i++) f(i); print(0);"
  in
  Alcotest.(check int) "no compilations" 0 report.Engine.compilations;
  Alcotest.(check int) "no native cycles" 0 report.Engine.native_cycles

let test_report_accounting () =
  let report, _ =
    run "function f(x) { return x + 1; } var t = 0; for (var i = 0; i < 50; i++) t += f(1); print(t);"
  in
  Alcotest.(check int) "total is the sum of parts"
    (report.Engine.interp_cycles + report.Engine.native_cycles
   + report.Engine.compile_cycles)
    report.Engine.total_cycles;
  Alcotest.(check bool) "successful = specialized - deoptimized" true
    (report.Engine.successful_funcs
    = report.Engine.specialized_funcs - report.Engine.deoptimized_funcs)

let test_runtime_error_surfaces () =
  match run "var x = null; x.boom;" with
  | exception Engine.Runtime_error _ -> ()
  | _ -> Alcotest.fail "expected a runtime error"

let test_cache_size_extension () =
  (* §6 future work: with a two-entry cache, a function alternating between
     two argument tuples keeps both specialized binaries and never
     deoptimizes; with the paper's one-entry cache it deoptimizes. *)
  let src =
    "function f(x) { return x * 3; } var t = 0;\n\
     for (var i = 0; i < 60; i++) t += f(i % 2);\n\
     print(t);"
  in
  let with_cache k =
    let cfg = Engine.default_config ~opt:Pipeline.all_on ~cache_size:k () in
    let report, out = run ~cfg src in
    (fn report "f", out)
  in
  let f1, out1 = with_cache 1 in
  let f2, out2 = with_cache 2 in
  Alcotest.(check string) "same result either way" out1 out2;
  Alcotest.(check bool) "k=1 deoptimizes" true f1.Engine.fr_deoptimized;
  Alcotest.(check bool) "k=2 keeps both specializations" true
    (not f2.Engine.fr_deoptimized);
  Alcotest.(check bool) "k=2 compiled two specialized versions" true
    (List.length (List.filter fst f2.Engine.fr_sizes) >= 2)

let test_selective_specialization () =
  (* Extension: with mixed-stability arguments (f stable closure, n varying
     int), full specialization deoptimizes and blacklists, while selective
     specialization narrows to the stable closure argument, keeps it burned
     in (so the callee stays inlined) and never deoptimizes. *)
  let src =
    "function kernel(a, b) { return (a * 2 + b) | 0; }\n\
     function apply(f, n) {\n\
    \  var t = 0;\n\
    \  for (var i = 0; i < 8; i++) t = (t + f(n + i, i)) | 0;\n\
    \  return t;\n\
     }\n\
     var r = 0;\n\
     for (var k = 0; k < 300; k++) r = (r + apply(kernel, k % 11)) | 0;\n\
     print(r);"
  in
  let full_cfg = Engine.default_config ~opt:Pipeline.all_on () in
  let sel_cfg = Engine.default_config ~opt:Pipeline.all_on ~selective:true () in
  let full_report, full_out = run ~cfg:full_cfg src in
  let sel_report, sel_out = run ~cfg:sel_cfg src in
  Alcotest.(check string) "same result either way" full_out sel_out;
  let full_apply = fn full_report "apply" and sel_apply = fn sel_report "apply" in
  Alcotest.(check bool) "full spec deoptimizes" true full_apply.Engine.fr_deoptimized;
  Alcotest.(check bool) "selective stays specialized" true
    (sel_apply.Engine.fr_was_specialized && not sel_apply.Engine.fr_deoptimized);
  Alcotest.(check int) "selective compiles apply once" 1 sel_apply.Engine.fr_compiles;
  (* The burned-in closure keeps kernel inlined: its call count stays at the
     pre-hot interpreted calls instead of one dynamic call per iteration. *)
  let sel_kernel = fn sel_report "kernel" and full_kernel = fn full_report "kernel" in
  Alcotest.(check bool) "kernel stays inlined under selective" true
    (sel_kernel.Engine.fr_calls * 10 < full_kernel.Engine.fr_calls);
  Alcotest.(check bool) "selective is faster end to end" true
    (sel_report.Engine.total_cycles < full_report.Engine.total_cycles)

let test_selective_narrows_then_settles () =
  (* An argument that is stable during warmup but varies later: the first
     miss narrows the mask and respecializes; afterwards the narrowed
     binary serves every call, so compile counts stay bounded. *)
  let src =
    "function g(a, b) { return (a * 10 + b) | 0; }\n\
     var r = 0;\n\
     for (var k = 0; k < 200; k++) r = (r + g(5, k < 40 ? 1 : k % 13)) | 0;\n\
     print(r);"
  in
  let cfg = Engine.default_config ~opt:Pipeline.all_on ~selective:true () in
  let report, _ = run ~cfg src in
  let g = fn report "g" in
  Alcotest.(check bool) "respecialized at most twice" true (g.Engine.fr_compiles <= 2);
  Alcotest.(check bool) "still specialized at the end" true g.Engine.fr_was_specialized;
  (* Both compiles were specialized ones (never fell back to generic). *)
  Alcotest.(check bool) "no generic compile" true (List.for_all fst g.Engine.fr_sizes)

let test_selective_all_varying_goes_generic () =
  (* When every argument varies from the start, selective specialization
     degrades to the generic path (single compile, no blacklist churn). *)
  let src =
    "function h(a, b) { return (a + b) | 0; }\n\
     var r = 0;\n\
     for (var k = 0; k < 100; k++) r = (r + h(k, k * 3)) | 0;\n\
     print(r);"
  in
  let cfg = Engine.default_config ~opt:Pipeline.all_on ~selective:true () in
  let report, _ = run ~cfg src in
  let h = fn report "h" in
  Alcotest.(check int) "one compile" 1 h.Engine.fr_compiles;
  Alcotest.(check bool) "it is generic" true
    (List.for_all (fun (s, _) -> not s) h.Engine.fr_sizes)

let test_osr_binary_reused_via_entry () =
  (* A function compiled at a loop head (OSR) caches its argument tuple;
     a later call with the same tuple enters the cached binary through the
     function entry instead of recompiling. *)
  let report, out =
    run
      "function f(n) { var t = 0; for (var i = 0; i < n; i++) t = (t + i) | 0; return t; }\n\
       var r = f(3000);\n\
       r += f(3000);\n\
       print(r);"
  in
  Alcotest.(check string) "result" "8997000\n" out;
  let f = fn report "f" in
  Alcotest.(check int) "compiled exactly once (OSR, then reused)" 1 f.Engine.fr_compiles;
  Alcotest.(check bool) "was specialized" true f.Engine.fr_was_specialized;
  Alcotest.(check bool) "no deopt" true (not f.Engine.fr_deoptimized)

let test_engine_determinism () =
  (* Two runs of the same program produce identical cycle accounting: no
     hidden global state leaks between engine instances. *)
  let src =
    "function h(s) { var t = 0; for (var i = 0; i < s.length; i++) t = (t * 31 + s.charCodeAt(i)) | 0; return t; }\n\
     var r = 0; for (var k = 0; k < 30; k++) r = (r + h(\"determinism\")) | 0; print(r);"
  in
  let r1, o1 = run src in
  let r2, o2 = run src in
  Alcotest.(check string) "same output" o1 o2;
  Alcotest.(check int) "same total cycles" r1.Engine.total_cycles r2.Engine.total_cycles;
  Alcotest.(check int) "same compile cycles" r1.Engine.compile_cycles
    r2.Engine.compile_cycles;
  Alcotest.(check int) "same compilations" r1.Engine.compilations r2.Engine.compilations

let test_closure_specialization_per_instance () =
  (* Two instances of the same function: cache keyed on closure identity
     through the argument tuple. *)
  let _, out =
    run
      "function mk(k) { return function(x) { return x + k; }; }\n\
       var f1 = mk(10); var f2 = mk(20);\n\
       function apply(f, x) { return f(x); }\n\
       var t = 0;\n\
       for (var i = 0; i < 40; i++) t += apply(f1, 1);\n\
       t += apply(f2, 1);\n\
       print(t);"
  in
  Alcotest.(check string) "closure environments respected" "461\n" out

(* Regression: the global-LRU clock. A probe that rejects an entry (the
   entry was examined but did not match the arguments) must not refresh
   that entry's [last_use]; only hits and installs may. Pinned with an
   exact two-victim eviction schedule: under the polyvariant policy,
   [f] and [g] each hold a generic catch-all plus a promoted value
   version, the call order below arranges the LRU order
   [f-generic; g-values; f-values; g-generic], and a byte budget sized
   from a first unbounded run forces exactly two evictions when [h]
   compiles. If rejected probes refreshed [last_use], the g(77) calls —
   which probe g's value version and reject it before hitting the
   catch-all — would keep that version young, and the second victim
   would belong to [f] instead of [g]. *)
let lru_schedule_src =
  "function f(x) { return x + 1; }\n\
   function g(x) { return x + 2; }\n\
   function h(x) { return x + 3; }\n\
   var t = 0;\n\
   for (var i = 0; i < 30; i++) t += f(5);\n\
   for (var i = 0; i < 30; i++) t += g(5);\n\
   for (var i = 0; i < 3; i++) t += f(5);\n\
   for (var i = 0; i < 5; i++) t += g(77);\n\
   for (var i = 0; i < 15; i++) t += h(1);\n\
   print(t);"

let test_lru_missing_probe_no_refresh () =
  let cfg budget =
    {
      (Engine.default_config ~opt:Pipeline.all_on ~policy:Policy.Polyvariant
         ~cache_size:2 ~code_cache_bytes:budget ())
      with
      (* No toplevel OSR: only f, g and h may own binaries. *)
      Engine.hot_loop_edges = max_int;
    }
  in
  (* Pass 1, unbounded: harvest every binary's size. Compile order is
     [f generic; f values (promoted); g generic; g values; h generic]. *)
  let report, out = run ~cfg:(cfg 0) lru_schedule_src in
  let bytes_of name =
    List.map
      (fun (_, size) -> size * Cost.bytes_per_native_instr)
      (fn report name).Engine.fr_sizes
  in
  match (bytes_of "f", bytes_of "g", bytes_of "h") with
  | ([ f_gen; _ ] as f_sizes), ([ _; g_val ] as g_sizes), [ h_gen ] ->
    (* Once [h] wants in, evicting the oldest binary (f's generic) must
       not suffice; the next-oldest (g's value version) tips it over. *)
    let total = List.fold_left ( + ) 0 (f_sizes @ g_sizes @ [ h_gen ]) in
    let budget = total - f_gen - g_val in
    let evicted = ref [] in
    let sink = function
      | Telemetry.Cache_evict { fname; _ } -> evicted := fname :: !evicted
      | _ -> ()
    in
    let _, out2 =
      Telemetry.with_default_sinks [ sink ] (fun () ->
          run ~cfg:(cfg budget) lru_schedule_src)
    in
    Alcotest.(check string) "bounded run computes the same result" out out2;
    Alcotest.(check (list string))
      "victims oldest-first; g's rejected probes did not refresh its value version"
      [ "f"; "g" ] (List.rev !evicted)
  | _ -> Alcotest.fail "unexpected compile schedule in unbounded pass"

(* Internal-consistency invariants of the engine report, over generated
   programs: counters that are maintained in different places must agree,
   and the whole accounting must be deterministic. *)
let prop_report_invariants =
  QCheck.Test.make ~name:"engine report is internally consistent" ~count:30
    (QCheck.make ~print:Fun.id Fuzz_gen.any_program)
    (fun src ->
      Builtins.reset_random 20130223;
      let cfg = Engine.default_config ~opt:Pipeline.all_on () in
      let report, _ = run ~cfg src in
      Builtins.reset_random 20130223;
      let report2, _ = run ~cfg src in
      Builtins.reset_random 20130223;
      let interp_report, _ = run ~cfg:Engine.interp_only src in
      List.for_all
        (fun (f : Engine.func_report) ->
          List.length f.Engine.fr_sizes = f.Engine.fr_compiles
          && ((not f.Engine.fr_deoptimized) || f.Engine.fr_was_specialized)
          && ((not f.Engine.fr_was_specialized) || f.Engine.fr_compiles >= 1))
        report.Engine.functions
      && report2.Engine.total_cycles = report.Engine.total_cycles
      && report2.Engine.compilations = report.Engine.compilations
      && interp_report.Engine.compilations = 0
      && interp_report.Engine.native_cycles = 0)

let suites =
  [
    ( "engine.policy",
      [
        Alcotest.test_case "cold functions stay interpreted" `Quick
          test_cold_functions_never_compile;
        Alcotest.test_case "hot function specializes" `Quick
          test_hot_function_compiles_specialized;
        Alcotest.test_case "deopt and blacklist" `Quick test_deopt_and_blacklist;
        Alcotest.test_case "argument cache hit" `Quick test_cache_hit_on_same_args;
        Alcotest.test_case "identity-keyed cache" `Quick test_object_identity_cache;
        Alcotest.test_case "interp-only mode" `Quick test_interp_only_never_compiles;
      ] );
    ( "engine.osr",
      [
        Alcotest.test_case "hot loop OSR" `Quick test_osr_compiles_hot_loop;
        Alcotest.test_case "toplevel OSR" `Quick test_toplevel_osr;
        Alcotest.test_case "OSR inside for-in" `Quick test_osr_in_for_in_loop;
        Alcotest.test_case "OSR binary reused via entry" `Quick
          test_osr_binary_reused_via_entry;
      ] );
    ( "engine.bailout",
      [
        Alcotest.test_case "resume preserves semantics" `Quick
          test_bailout_resumes_correctly;
        Alcotest.test_case "bailout counter discards binaries" `Quick
          test_bailout_counter_discards;
      ] );
    ( "engine.misc",
      [
        Alcotest.test_case "report accounting" `Quick test_report_accounting;
        Alcotest.test_case "runtime errors surface" `Quick test_runtime_error_surfaces;
        Alcotest.test_case "closure environments" `Quick
          test_closure_specialization_per_instance;
        Alcotest.test_case "cache-size extension (§6)" `Quick test_cache_size_extension;
        Alcotest.test_case "selective specialization keeps stable args" `Quick
          test_selective_specialization;
        Alcotest.test_case "selective narrowing settles" `Quick
          test_selective_narrows_then_settles;
        Alcotest.test_case "selective all-varying goes generic" `Quick
          test_selective_all_varying_goes_generic;
        Alcotest.test_case "LRU: rejected probes do not refresh last_use" `Quick
          test_lru_missing_probe_no_refresh;
        QCheck_alcotest.to_alcotest ~long:false prop_report_invariants;
        Alcotest.test_case "deterministic accounting" `Quick test_engine_determinism;
      ] );
  ]
