(* Failure-domain tests: the deterministic fault-injection layer itself,
   compile-abort containment (the barrier that keeps [Diag.Failed] from
   escaping [Engine.run]), quarantine with exponential backoff and pinning,
   injected guard failures on the entry and in-body paths, the deopt-storm
   detector, the code-cache byte budget with cross-function LRU eviction,
   the call-depth limit, and the two meta-invariants: disabled faults are
   cycle-invisible, and any fault schedule still yields the interpreter's
   output (the chaos differential). *)

open Runtime

(* Run a source program on an explicit engine, capturing prints, with
   optional ring sinks for event inspection. *)
let run ?(cfg = Engine.default_config ()) ?(sinks = []) src =
  let buf = Buffer.create 64 in
  Builtins.with_print_hook
    (fun s -> Buffer.add_string buf s; Buffer.add_char buf '\n')
    (fun () ->
      let engine = Engine.make cfg (Bytecode.Compile.program_of_source src) in
      List.iter (Telemetry.attach (Engine.telemetry engine)) sinks;
      let report = Engine.run engine in
      (engine, report, Buffer.contents buf))

let interp_out src =
  let _, _, out = run ~cfg:Engine.interp_only src in
  out

let fn report name =
  List.find (fun (f : Engine.func_report) -> f.Engine.fr_name = name) report.Engine.functions

let counter engine report name key =
  Telemetry.Counters.get
    (Telemetry.counters (Engine.telemetry engine))
    ~fid:(fn report name).Engine.fr_fid key

let events_of ring name =
  List.filter (fun e -> Telemetry.event_fname e = name) (Telemetry.Ring.contents ring)

let kinds events = List.map Telemetry.event_kind events

(* Guards survive in PS-only pipelines (the full pipeline constant-folds
   checks whose inputs are all burned in). *)
let ps_only = Pipeline.make ~ps:true "PS-only"

(* A function hot enough to compile under the default thresholds, called
   [n] times from a loop kept under the OSR threshold per 39 iterations
   would be; callers pick [n] to exercise a quarantine schedule. *)
let hot_src n =
  Printf.sprintf
    "function f(x) { return (x * 3 + 1) | 0; }\n\
     var t = 0;\n\
     for (var k = 0; k < %d; k++) t = (t + f(5)) | 0;\n\
     print(t);"
    n

(* ------------------------------------------------------------------ *)
(* The plan mechanics                                                  *)
(* ------------------------------------------------------------------ *)

let test_plan_mechanics () =
  Alcotest.(check bool) "inactive by default" false (Faults.active ());
  Alcotest.(check bool) "no plan, no fire" false (Faults.fire Faults.Compile_diag);
  let plan =
    Faults.make ~seed:7
      [ (Faults.Compile_diag, Faults.Nth 2); (Faults.Exec_guard, Faults.Every 3) ]
  in
  let fire_seq point n =
    Faults.with_plan plan (fun () -> List.init n (fun _ -> Faults.fire point))
  in
  Alcotest.(check (list bool)) "nth(2) fires exactly once"
    [ false; true; false; false; false ]
    (fire_seq Faults.Compile_diag 5);
  Alcotest.(check (list bool)) "every(3) fires at each multiple"
    [ false; false; true; false; false; true; false ]
    (fire_seq Faults.Exec_guard 7);
  (* with_plan installs a fresh copy, so a plan replays identically. *)
  Alcotest.(check (list bool)) "replay is identical"
    [ false; true; false; false; false ]
    (fire_seq Faults.Compile_diag 5);
  Faults.with_plan plan (fun () ->
      Alcotest.(check bool) "unruled point never fires" false
        (Faults.fire Faults.Cache_oom));
  Alcotest.(check bool) "uninstalled on exit" false (Faults.active ())

let test_sample_deterministic () =
  for seed = 0 to 19 do
    Alcotest.(check string)
      (Printf.sprintf "sample %d replays" seed)
      (Faults.describe (Faults.sample seed))
      (Faults.describe (Faults.sample seed))
  done;
  (* Probabilistic rules draw from the plan's own seeded PRNG, so even
     they replay exactly. *)
  let plan = Faults.make ~seed:11 [ (Faults.Exec_guard, Faults.Prob 0.5) ] in
  let draw () =
    Faults.with_plan plan (fun () ->
        List.init 40 (fun _ -> Faults.fire Faults.Exec_guard))
  in
  let first = draw () in
  Alcotest.(check (list bool)) "prob schedule replays" first (draw ());
  Alcotest.(check bool) "prob actually varies" true
    (List.mem true first && List.mem false first)

(* ------------------------------------------------------------------ *)
(* Compile-abort containment and the backoff schedule                  *)
(* ------------------------------------------------------------------ *)

let test_compile_abort_retries () =
  (* One injected abort at the first compile (call 10): the wasted cycles
     are charged, the function is quarantined for hot_calls * 2 = 20
     calls, and the retry at call 30 succeeds. *)
  let ring = Telemetry.Ring.create 256 in
  let src = hot_src 35 in
  let plan = Faults.make ~seed:1 [ (Faults.Compile_diag, Faults.Nth 1) ] in
  let engine, report, out =
    Faults.with_plan plan (fun () -> run ~sinks:[ Telemetry.Ring.sink ring ] src)
  in
  Alcotest.(check string) "output matches the interpreter" (interp_out src) out;
  let get = counter engine report "f" in
  Alcotest.(check int) "one aborted compile" 1 (get Telemetry.Key.compiles_aborted);
  Alcotest.(check int) "one quarantine" 1 (get Telemetry.Key.quarantines);
  Alcotest.(check int) "not pinned" 0 (get Telemetry.Key.pins);
  Alcotest.(check int) "the retry succeeded" 1 (get Telemetry.Key.compiles);
  (match events_of ring "f" with
  | Telemetry.Compile_start _
    :: Telemetry.Compile_abort { reason; cycles; osr = false; _ }
    :: Telemetry.Quarantine
         { reason = Telemetry.Compile_fault; backoff_calls = 20; permanent = false; _ }
    :: rest ->
    Alcotest.(check bool) "abort names the injected fault" true
      (reason = "injected compile_diag fault");
    Alcotest.(check bool) "wasted optimizer cycles charged" true (cycles > 0);
    Alcotest.(check bool) "recompiled after backoff" true
      (List.mem "compile_end" (kinds rest))
  | es ->
    Alcotest.fail
      ("expected abort then quarantine, got: " ^ String.concat "," (kinds es)));
  (* The wasted work shows up in the cycle ledger. *)
  let _, clean, _ = run src in
  Alcotest.(check bool) "abort charged compile cycles" true
    (report.Engine.compile_cycles > clean.Engine.compile_cycles)

let test_code_verify_abort () =
  (* Same containment, but the fault lands after the backend (the binary
     is rejected at the LIR verifier) — the backend's cycles are charged
     too. *)
  let src = hot_src 35 in
  let plan = Faults.make ~seed:1 [ (Faults.Code_verify, Faults.Nth 1) ] in
  let engine, report, out = Faults.with_plan plan (fun () -> run src) in
  Alcotest.(check string) "output matches the interpreter" (interp_out src) out;
  let get = counter engine report "f" in
  Alcotest.(check int) "one aborted compile" 1 (get Telemetry.Key.compiles_aborted);
  Alcotest.(check int) "the retry succeeded" 1 (get Telemetry.Key.compiles)

let test_poisoned_pass_pins () =
  (* Regression for the containment barrier itself: a pipeline stage that
     rejects every graph (here via mir_hook raising a Diag) previously let
     [Diag.Failed] escape [Engine.run] on the mid-run recompile. Now every
     attempt aborts, the backoff schedule runs its course — with hot_calls
     = 2, attempts at calls 2, 6, 14 and 30 — and the fourth failure pins
     the function to the interpreter for good. *)
  let cfg = { (Engine.default_config ()) with Engine.hot_calls = 2 } in
  let src = hot_src 35 in
  let aborted = ref 0 in
  let engine, report, out =
    Engine.with_mir_hook
      (fun _ -> Diag.error ~layer:"mir" ~pass:"poisoned" "synthetic pass corruption")
      (fun () ->
        Engine.with_diag_abort_hook (fun _ -> incr aborted) (fun () -> run ~cfg src))
  in
  Alcotest.(check string) "completes with the interpreter's answer" (interp_out src) out;
  let get = counter engine report "f" in
  Alcotest.(check int) "attempts at calls 2/6/14/30" 4 (get Telemetry.Key.compiles_aborted);
  Alcotest.(check int) "three backoff quarantines" 3 (get Telemetry.Key.quarantines);
  Alcotest.(check int) "then pinned" 1 (get Telemetry.Key.pins);
  Alcotest.(check int) "never compiled" 0 (get Telemetry.Key.compiles);
  Alcotest.(check bool) "diagnostics reached the abort hook" true (!aborted >= 4)

(* ------------------------------------------------------------------ *)
(* Injected guard failures: entry vs in-body                           *)
(* ------------------------------------------------------------------ *)

let test_exec_fault_entry_guard () =
  (* A selectively specialized binary carries an entry type barrier for
     its unburned (value-unstable) argument. Forcing that passing barrier
     replays the §4 deoptimization path — entry bail at pc 0, deopt — on
     arguments that actually match, and selective mode narrows and
     respecializes instead of blacklisting. *)
  let cfg = Engine.default_config ~opt:Pipeline.all_on ~selective:true () in
  let src =
    "function g(a, b) { return (a * 10 + b) | 0; }\n\
     var t = 0;\n\
     for (var k = 0; k < 30; k++) t = (t + g(5, k % 7)) | 0;\n\
     print(t);"
  in
  let ring = Telemetry.Ring.create 256 in
  let plan = Faults.make ~seed:1 [ (Faults.Exec_guard, Faults.Nth 1) ] in
  let engine, report, out =
    Faults.with_plan plan (fun () -> run ~cfg ~sinks:[ Telemetry.Ring.sink ring ] src)
  in
  Alcotest.(check string) "output matches the interpreter" (interp_out src) out;
  let get = counter engine report "g" in
  Alcotest.(check int) "one entry bailout" 1 (get Telemetry.Key.bailouts_entry);
  Alcotest.(check int) "counted as a §4 deopt" 1 (get Telemetry.Key.deopts);
  Alcotest.(check int) "narrowed, not blacklisted" 0 (get Telemetry.Key.blacklists);
  Alcotest.(check int) "respecialized once" 2 (get Telemetry.Key.compiles);
  match
    List.filter (function Telemetry.Bailout _ -> true | _ -> false) (events_of ring "g")
  with
  | [ Telemetry.Bailout { pc = 0; strikes = 0; osr_entry = false; _ } ] -> ()
  | _ -> Alcotest.fail "expected exactly one entry bailout at pc 0"

(* In-body guard coverage wants a binary whose guards resume mid-function:
   a PS-specialized body burns the argument in, so the surviving guard on
   the global index resumes past pc 0 (a generic binary's first guard would
   resume at 0 and read as an entry bail). *)
let guarded_src n =
  Printf.sprintf
    "var idx = 1;\n\
     function f(s) { return s[idx]; }\n\
     var a = [1, 2, 3];\n\
     var t = 0;\n\
     var i = 0;\n\
     while (i < %d) { t = (t + f(a)) | 0; i = i + 1; }\n\
     print(t);"
    n

let test_exec_fault_in_body () =
  (* One forced in-body guard failure: a strike against the binary, which
     survives (max_bailouts = 3) and keeps serving the remaining calls. *)
  let cfg = Engine.default_config ~opt:ps_only () in
  let src = guarded_src 30 in
  let ring = Telemetry.Ring.create 256 in
  let plan = Faults.make ~seed:1 [ (Faults.Exec_guard, Faults.Nth 1) ] in
  let engine, report, out =
    Faults.with_plan plan (fun () -> run ~cfg ~sinks:[ Telemetry.Ring.sink ring ] src)
  in
  Alcotest.(check string) "output matches the interpreter" (interp_out src) out;
  let get = counter engine report "f" in
  Alcotest.(check int) "one in-body bailout" 1 (get Telemetry.Key.bailouts);
  Alcotest.(check int) "not an entry bail" 0 (get Telemetry.Key.bailouts_entry);
  Alcotest.(check int) "no discard below the strike limit" 0
    (get Telemetry.Key.strike_discards);
  Alcotest.(check int) "no deopt, no recompile" 1 (get Telemetry.Key.compiles);
  match
    List.filter (function Telemetry.Bailout _ -> true | _ -> false) (events_of ring "f")
  with
  | [ Telemetry.Bailout { pc; strikes = 1; osr_entry = false; _ } ] ->
    Alcotest.(check bool) "bailed mid-body" true (pc > 0)
  | _ -> Alcotest.fail "expected exactly one in-body bailout"

let test_storm_detector () =
  (* Every passing guard forced to fail: each native call bails in-body,
     every third bail strikes the binary out, and the eighth discard trips
     the storm detector into a quarantine with the usual backoff. The full
     deterministic schedule over 100 calls (hot at 10): native spans
     10..33 and 53..76, two storms, 20-then-40-call backoffs. *)
  let cfg = Engine.default_config ~opt:ps_only () in
  let src = guarded_src 100 in
  let plan = Faults.make ~seed:1 [ (Faults.Exec_guard, Faults.Every 1) ] in
  let engine, report, out = Faults.with_plan plan (fun () -> run ~cfg src) in
  Alcotest.(check string) "output matches the interpreter" (interp_out src) out;
  let get = counter engine report "f" in
  Alcotest.(check int) "two storms" 2 (get Telemetry.Key.storms);
  Alcotest.(check int) "each storm quarantined" 2 (get Telemetry.Key.quarantines);
  Alcotest.(check int) "never pinned" 0 (get Telemetry.Key.pins);
  Alcotest.(check int) "three strikes per discard" (get Telemetry.Key.bailouts)
    (3 * get Telemetry.Key.strike_discards);
  Alcotest.(check int) "48 native attempts, all bailed" 48 (get Telemetry.Key.bailouts);
  Alcotest.(check int) "a compile per discarded binary" 16 (get Telemetry.Key.compiles)

(* ------------------------------------------------------------------ *)
(* The code-cache byte budget                                          *)
(* ------------------------------------------------------------------ *)

(* Two small functions whose binaries both fit the cache alone but not
   together; loops stay under the OSR threshold so main never compiles. *)
let two_func_src =
  "function f(x) { return (x + 1) | 0; }\n\
   function g(x) { return (x + 2) | 0; }\n\
   var t = 0;\n\
   for (var k = 0; k < 12; k++) t = (t + f(k)) | 0;\n\
   for (var k = 0; k < 12; k++) t = (t + g(k)) | 0;\n\
   for (var k = 0; k < 12; k++) t = (t + f(k)) | 0;\n\
   print(t);"

let native_bytes report name =
  match (fn report name).Engine.fr_sizes with
  | (_, size) :: _ -> size * Cost.bytes_per_native_instr
  | [] -> Alcotest.fail (name ^ " never compiled")

let test_cache_budget_lru_eviction () =
  (* Size the budget from an unbounded run: room for the larger of the two
     binaries, but never both. g's admission then evicts f (the LRU
     binary), and f's return evicts g — pure capacity decisions, with no
     deopt, blacklist or quarantine accounting. *)
  let _, unbounded, expected = run two_func_src in
  let budget = max (native_bytes unbounded "f") (native_bytes unbounded "g") in
  let cfg = Engine.default_config ~code_cache_bytes:budget () in
  let ring = Telemetry.Ring.create 256 in
  let engine, report, out = run ~cfg ~sinks:[ Telemetry.Ring.sink ring ] two_func_src in
  Alcotest.(check string) "same output under the budget" expected out;
  let get name = counter engine report name in
  Alcotest.(check int) "f evicted once, then g" 1 (get "f" Telemetry.Key.cache_evictions);
  Alcotest.(check int) "g evicted by f's return" 1 (get "g" Telemetry.Key.cache_evictions);
  Alcotest.(check int) "f recompiled after eviction" 2 (get "f" Telemetry.Key.compiles);
  Alcotest.(check int) "g compiled once" 1 (get "g" Telemetry.Key.compiles);
  List.iter
    (fun name ->
      Alcotest.(check int) (name ^ ": eviction is not a deopt") 0
        (get name Telemetry.Key.deopts);
      Alcotest.(check int) (name ^ ": eviction is not a quarantine") 0
        (get name Telemetry.Key.quarantines))
    [ "f"; "g" ];
  match
    List.filter
      (function Telemetry.Cache_evict _ -> true | _ -> false)
      (Telemetry.Ring.contents ring)
  with
  | [ Telemetry.Cache_evict { bytes = b1; _ }; Telemetry.Cache_evict { bytes = b2; _ } ]
    ->
    Alcotest.(check bool) "evictions reclaim real bytes" true (b1 > 0 && b2 > 0)
  | es -> Alcotest.fail (Printf.sprintf "expected 2 eviction events, got %d" (List.length es))

let test_cache_budget_oversized_binary_pins () =
  (* A budget smaller than any single binary: every admission fails, the
     backoff schedule runs (attempts at calls 10, 30, 70, 150) and the
     fourth failure pins the function; the program still completes on the
     interpreter. *)
  let src = hot_src 160 in
  let cfg =
    { (Engine.default_config ~code_cache_bytes:1 ()) with Engine.hot_loop_edges = 1000 }
  in
  let engine, report, out = run ~cfg src in
  Alcotest.(check string) "completes on the interpreter" (interp_out src) out;
  let get = counter engine report "f" in
  Alcotest.(check int) "four admission attempts" 4 (get Telemetry.Key.compiles);
  Alcotest.(check int) "three backoff quarantines" 3 (get Telemetry.Key.quarantines);
  Alcotest.(check int) "then pinned" 1 (get Telemetry.Key.pins);
  Alcotest.(check int) "nothing ever admitted, nothing evicted" 0
    (get Telemetry.Key.cache_evictions)

let test_cache_oom_fault () =
  (* The injected flavour: admission reports an exhausted cache once on an
     unbounded budget; the function quarantines and the retry admits. *)
  let src = hot_src 35 in
  let plan = Faults.make ~seed:1 [ (Faults.Cache_oom, Faults.Nth 1) ] in
  let engine, report, out = Faults.with_plan plan (fun () -> run src) in
  Alcotest.(check string) "output matches the interpreter" (interp_out src) out;
  let get = counter engine report "f" in
  Alcotest.(check int) "compiled at calls 10 and 30" 2 (get Telemetry.Key.compiles);
  Alcotest.(check int) "one quarantine" 1 (get Telemetry.Key.quarantines);
  Alcotest.(check int) "no real eviction happened" 0 (get Telemetry.Key.cache_evictions)

(* ------------------------------------------------------------------ *)
(* The call-depth limit                                                *)
(* ------------------------------------------------------------------ *)

let rec_src = "function r(n) { if (n < 1) return 0; return r(n - 1); }\nprint(r(50));"

let test_depth_limit_engine () =
  Alcotest.check_raises "depth 20 overflows" (Engine.Runtime_error "stack overflow")
    (fun () -> ignore (run ~cfg:(Engine.default_config ~max_depth:20 ()) rec_src));
  let _, _, out = run ~cfg:(Engine.default_config ~max_depth:100 ()) rec_src in
  Alcotest.(check string) "depth 100 suffices" "0\n" out

let test_depth_limit_interp () =
  Alcotest.check_raises "interpreter tier honours the limit"
    (Engine.Runtime_error "stack overflow") (fun () ->
      ignore (run ~cfg:{ Engine.interp_only with Engine.max_depth = 20 } rec_src))

let test_unbounded_recursion_is_runtime_error () =
  (* Regression: runaway recursion used to die as an OCaml [Stack_overflow]
     crash; the default depth limit turns it into the MiniJS-level error. *)
  Alcotest.check_raises "runaway recursion" (Engine.Runtime_error "stack overflow")
    (fun () -> ignore (run "function r(n) { return r(n + 1); }\nr(0);"))

(* ------------------------------------------------------------------ *)
(* Meta-invariants                                                     *)
(* ------------------------------------------------------------------ *)

let test_disabled_faults_cost_nothing () =
  (* The whole layer must be invisible to the paper's measurements: no
     plan, an empty plan, and a plan that never fires must all produce
     bit-identical outputs and cycle ledgers. *)
  let src =
    "var idx = 1;\n\
     function f(s) { return s[idx]; }\n\
     var a = [1, 2, 3];\n\
     var t = 0;\n\
     for (var k = 0; k < 25; k++) t = (t + f(a)) | 0;\n\
     idx = 99;\n\
     f(a);\n\
     print(t);"
  in
  let cfg = Engine.default_config ~opt:ps_only () in
  let _, bare, out_bare = run ~cfg src in
  let _, empty, out_empty =
    Faults.with_plan (Faults.make ~seed:3 []) (fun () -> run ~cfg src)
  in
  let dormant_plan =
    Faults.make ~seed:3
      [
        (Faults.Compile_diag, Faults.Nth 1_000_000);
        (Faults.Code_verify, Faults.Nth 1_000_000);
        (Faults.Exec_guard, Faults.Nth 1_000_000);
        (Faults.Cache_oom, Faults.Nth 1_000_000);
      ]
  in
  let _, dormant, out_dormant = Faults.with_plan dormant_plan (fun () -> run ~cfg src) in
  List.iter
    (fun (label, (r : Engine.report), out) ->
      Alcotest.(check string) (label ^ ": same output") out_bare out;
      Alcotest.(check int) (label ^ ": same total cycles") bare.Engine.total_cycles
        r.Engine.total_cycles;
      Alcotest.(check int) (label ^ ": same interp cycles") bare.Engine.interp_cycles
        r.Engine.interp_cycles;
      Alcotest.(check int) (label ^ ": same native cycles") bare.Engine.native_cycles
        r.Engine.native_cycles;
      Alcotest.(check int) (label ^ ": same compile cycles") bare.Engine.compile_cycles
        r.Engine.compile_cycles)
    [ ("empty plan", empty, out_empty); ("dormant plan", dormant, out_dormant) ]

let test_chaos_differential_smoke () =
  (* A slice of the @chaos CI gate inside the unit suite: generated
     programs under sampled fault plans must match the fault-free
     interpreter in every configuration. *)
  for seed = 0 to 7 do
    let src = Fuzz_gen.any_program (Random.State.make [| seed |]) in
    match Fuzz_diff.check_chaos ~seed src with
    | None -> ()
    | Some (Fuzz_diff.Mismatch m) ->
      Alcotest.fail
        (Printf.sprintf "seed %d: %s diverged: %S vs %S" seed m.Fuzz_diff.mm_config
           m.Fuzz_diff.mm_expected m.Fuzz_diff.mm_got)
    | Some (Fuzz_diff.Verifier_diag { vd_config; vd_diag }) ->
      Alcotest.fail
        (Printf.sprintf "seed %d: %s verifier: %s" seed vd_config
           (Diag.to_string vd_diag))
  done

let suites =
  [
    ( "faults.plan",
      [
        Alcotest.test_case "fire mechanics" `Quick test_plan_mechanics;
        Alcotest.test_case "sampling is deterministic" `Quick test_sample_deterministic;
      ] );
    ( "faults.compile",
      [
        Alcotest.test_case "abort, backoff, retry" `Quick test_compile_abort_retries;
        Alcotest.test_case "code-verify abort" `Quick test_code_verify_abort;
        Alcotest.test_case "poisoned pass pins (regression)" `Quick
          test_poisoned_pass_pins;
      ] );
    ( "faults.exec",
      [
        Alcotest.test_case "forced entry-guard bail" `Quick test_exec_fault_entry_guard;
        Alcotest.test_case "forced in-body bail" `Quick test_exec_fault_in_body;
        Alcotest.test_case "deopt-storm detector" `Quick test_storm_detector;
      ] );
    ( "faults.cache",
      [
        Alcotest.test_case "LRU eviction under a byte budget" `Quick
          test_cache_budget_lru_eviction;
        Alcotest.test_case "oversized binary pins" `Quick
          test_cache_budget_oversized_binary_pins;
        Alcotest.test_case "injected admission failure" `Quick test_cache_oom_fault;
      ] );
    ( "faults.depth",
      [
        Alcotest.test_case "engine depth limit" `Quick test_depth_limit_engine;
        Alcotest.test_case "interpreter depth limit" `Quick test_depth_limit_interp;
        Alcotest.test_case "runaway recursion (regression)" `Quick
          test_unbounded_recursion_is_runtime_error;
      ] );
    ( "faults.invariance",
      [
        Alcotest.test_case "disabled faults are cycle-invisible" `Quick
          test_disabled_faults_cost_nothing;
        Alcotest.test_case "chaos differential smoke" `Quick
          test_chaos_differential_smoke;
      ] );
  ]
