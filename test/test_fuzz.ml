(* Tests for the fuzzing library itself: the generators must be
   deterministic per seed, must emit programs the front end accepts, and
   the differential driver must capture output and agree with itself. *)

let gen_at gen seed =
  let st = Random.State.make [| seed |] in
  gen st

let generators =
  [
    ("program", Fuzz_gen.program);
    ("loops", Fuzz_gen.loop_program);
    ("objects", Fuzz_gen.object_program);
    ("deopt", Fuzz_gen.deopt_program);
    ("any", Fuzz_gen.any_program);
  ]

let test_generators_deterministic () =
  List.iter
    (fun (name, gen) ->
      for seed = 0 to 9 do
        Alcotest.(check string)
          (Printf.sprintf "%s seed %d stable" name seed)
          (gen_at gen seed) (gen_at gen seed)
      done)
    generators

let test_generators_vary_by_seed () =
  List.iter
    (fun (name, gen) ->
      let distinct =
        List.init 20 (gen_at gen) |> List.sort_uniq compare |> List.length
      in
      Alcotest.(check bool)
        (name ^ " produces varied programs") true (distinct > 5))
    generators

let test_generated_programs_compile () =
  List.iter
    (fun (name, gen) ->
      for seed = 0 to 25 do
        let src = gen_at gen seed in
        match Bytecode.Compile.program_of_source src with
        | _ -> ()
        | exception e ->
          Alcotest.failf "%s seed %d does not compile (%s):\n%s" name seed
            (Printexc.to_string e) src
      done)
    generators

let test_diff_run_captures_output () =
  Alcotest.(check string)
    "print output captured" "7\nhi\n"
    (Fuzz_diff.run Engine.interp_only "print(3 + 4); print(\"hi\");")

let test_diff_run_folds_exceptions () =
  let out = Fuzz_diff.run Engine.interp_only "print(missing());" in
  Alcotest.(check bool) "exception folded into output" true
    (String.length out >= 3 && String.sub out 0 3 = "EXN")

let test_diff_check_smoke () =
  (* A tiny deterministic sweep; the wide sweeps live in the qcheck
     properties and bin/fuzz.exe. *)
  for seed = 0 to 4 do
    let src = gen_at Fuzz_gen.any_program seed in
    match Fuzz_diff.check src with
    | None -> ()
    | Some (Fuzz_diff.Mismatch m) ->
      Alcotest.failf "seed %d: %s disagreed\ninterp: %s\ngot: %s\n%s" seed
        m.Fuzz_diff.mm_config m.Fuzz_diff.mm_expected m.Fuzz_diff.mm_got src
    | Some (Fuzz_diff.Verifier_diag { vd_config; vd_diag }) ->
      Alcotest.failf "seed %d: verifier diagnostic under %s\n%s\n%s" seed
        vd_config (Diag.to_string vd_diag) src
  done

let test_diff_default_configs_cover_figure9 () =
  let names = List.map fst Fuzz_diff.default_configs in
  List.iter
    (fun c ->
      Alcotest.(check bool)
        (c.Pipeline.name ^ " in default matrix")
        true
        (List.mem c.Pipeline.name names))
    Pipeline.figure9_configs;
  Alcotest.(check bool) "baseline in default matrix" true
    (List.mem "baseline" names)

let suites =
  [
    ( "fuzz",
      [
        Alcotest.test_case "generators deterministic per seed" `Quick
          test_generators_deterministic;
        Alcotest.test_case "generators vary by seed" `Quick
          test_generators_vary_by_seed;
        Alcotest.test_case "generated programs compile" `Quick
          test_generated_programs_compile;
        Alcotest.test_case "diff captures output" `Quick test_diff_run_captures_output;
        Alcotest.test_case "diff folds exceptions" `Quick
          test_diff_run_folds_exceptions;
        Alcotest.test_case "diff smoke sweep" `Quick test_diff_check_smoke;
        Alcotest.test_case "default matrix covers figure 9" `Quick
          test_diff_default_configs_cover_figure9;
      ] );
  ]
