(* End-to-end tests: MiniJS source -> bytecode -> interpreter. These pin
   down the reference semantics that the JIT must preserve. *)

open Runtime

(* Run a source string, capturing everything [print] outputs. *)
let run_capture src =
  let out = Buffer.create 64 in
  Builtins.with_print_hook
    (fun s -> Buffer.add_string out s; Buffer.add_char out '\n')
    (fun () ->
      let program = Bytecode.Compile.program_of_source src in
      let _state, _v = Interp.run_program program in
      Buffer.contents out)

let check_output name src expected =
  Alcotest.(check string) name (expected ^ "\n") (run_capture src)

let test_arithmetic () =
  check_output "int arithmetic" "print(2 + 3 * 4 - 1);" "13";
  check_output "division" "print(7 / 2);" "3.5";
  check_output "precedence with parens" "print((2 + 3) * 4);" "20"

let test_variables () =
  check_output "var and assign" "var x = 1; x = x + 41; print(x);" "42";
  check_output "compound assign" "var x = 10; x += 5; x *= 2; print(x);" "30";
  check_output "multi declarator" "var a = 1, b = 2; print(a + b);" "3"

let test_update_expressions () =
  check_output "postfix value" "var i = 5; print(i++); print(i);" "5\n6";
  check_output "prefix value" "var i = 5; print(++i); print(i);" "6\n6";
  check_output "array element update" "var a = [1]; a[0]++; print(a[0]);" "2";
  check_output "property update" "var o = {n: 1}; print(o.n--); print(o.n);" "1\n0";
  check_output "string increments numerically" "var s = \"5\"; s++; print(s);" "6"

let test_control_flow () =
  check_output "if/else" "if (1 < 2) print(\"yes\"); else print(\"no\");" "yes";
  check_output "while" "var i = 0, t = 0; while (i < 5) { t += i; i++; } print(t);" "10";
  check_output "do-while runs once" "var i = 9; do { print(i); i++; } while (i < 5);" "9";
  check_output "for with break"
    "var t = 0; for (var i = 0; i < 100; i++) { if (i == 3) break; t += i; } print(t);"
    "3";
  check_output "continue" "var t = 0; for (var i = 0; i < 5; i++) { if (i % 2) continue; t += i; } print(t);" "6";
  check_output "nested loop break"
    "var n = 0; for (var i = 0; i < 3; i++) { for (var j = 0; j < 3; j++) { if (j == 1) break; n++; } } print(n);"
    "3"

let test_logic () =
  check_output "and returns operand" "print(0 && 5, 2 && 5);" "0 5";
  check_output "or returns operand" "print(0 || 7, 3 || 7);" "7 3";
  check_output "short circuit effects"
    "var n = 0; function f() { n++; return true; } var x = false && f(); print(n);" "0";
  check_output "ternary" "print(3 > 2 ? \"a\" : \"b\");" "a"

let test_functions () =
  check_output "declaration hoisting" "print(add(1, 2)); function add(a, b) { return a + b; }" "3";
  check_output "recursion"
    "function fact(n) { return n <= 1 ? 1 : n * fact(n - 1); } print(fact(10));" "3628800";
  check_output "missing args are undefined"
    "function f(a, b) { return typeof b; } print(f(1));" "undefined";
  check_output "function as value"
    "var t = function(f, x) { return f(x); }; print(t(function(y) { return y * 2; }, 21));"
    "42";
  check_output "early return" "function f(x) { if (x) return 1; return 2; } print(f(0), f(3));" "2 1"

let test_closures () =
  check_output "captured counter"
    "function mk() { var c = 0; return function() { c++; return c; }; } var f = mk(); f(); f(); print(f());"
    "3";
  check_output "distinct environments"
    "function mk() { var c = 0; return function() { c++; return c; }; } var a = mk(), b = mk(); a(); print(a(), b());"
    "2 1";
  check_output "captured parameter"
    "function adder(n) { return function(x) { return x + n; }; } print(adder(10)(5));" "15";
  check_output "two level capture"
    "function f() { var x = 1; function g() { function h() { return x; } return h(); } return g(); } print(f());"
    "1";
  check_output "sibling closures share a cell"
    "function mk() { var c = 0; var inc = function() { c++; }; var get = function() { return c; }; inc(); inc(); return get(); } print(mk());"
    "2"

let test_arrays () =
  check_output "literal and index" "var a = [10, 20, 30]; print(a[1], a.length);" "20 3";
  check_output "out of bounds" "var a = [1]; print(a[5]);" "undefined";
  check_output "growth by write" "var a = []; a[3] = 9; print(a.length, a[0]);" "4 undefined";
  check_output "sized constructor" "var a = new Array(4); print(a.length);" "4";
  check_output "element constructor" "var a = new Array(1, 2, 3); print(a.join(\"\"));" "123"

let test_objects () =
  check_output "literal props" "var o = {a: 1, b: \"x\"}; print(o.a, o.b);" "1 x";
  check_output "prop assignment" "var o = {}; o.k = 7; print(o.k);" "7";
  check_output "computed keys" "var o = {}; o[\"k\" + 1] = 3; print(o.k1);" "3";
  check_output "missing prop" "var o = {}; print(o.nope);" "undefined";
  check_output "method via property"
    "var o = {f: function(x) { return x + 1; }}; print(o.f(41));" "42"

let test_strings () =
  check_output "builtin methods" "var s = \"hello\"; print(s.length, s.charAt(1), s.charCodeAt(0));" "5 e 104";
  check_output "string index" "var s = \"abc\"; print(s[1]);" "b";
  check_output "concat builds" "var s = \"\"; for (var i = 0; i < 3; i++) s += i; print(s);" "012"

let test_array_higher_order () =
  check_output "map" "print([1, 2, 3].map(function(x) { return x * 10; }).join(\"-\"));"
    "10-20-30";
  check_output "map receives the index"
    "print([5, 5, 5].map(function(x, i) { return x + i; }).join(\",\"));" "5,6,7";
  check_output "filter"
    "print([1, 2, 3, 4, 5, 6].filter(function(x) { return x % 2 == 0; }).join(\",\"));"
    "2,4,6";
  check_output "forEach side effects"
    "var t = 0; [1, 2, 3].forEach(function(x) { t += x; }); print(t);" "6";
  check_output "reduce with initial"
    "print([1, 2, 3, 4].reduce(function(acc, x) { return acc + x; }, 100));" "110";
  check_output "reduce without initial"
    "print([1, 2, 3, 4].reduce(function(acc, x) { return acc * x; }));" "24";
  check_output "some/every"
    "var a = [1, 2, 3]; print(a.some(function(x) { return x > 2; }), a.every(function(x) { return x > 0; }), a.every(function(x) { return x > 1; }));"
    "true true false";
  check_output "chained"
    "print([1, 2, 3, 4, 5].filter(function(x) { return x % 2 == 1; }).map(function(x) { return x * x; }).reduce(function(a, b) { return a + b; }, 0));"
    "35"

let test_switch () =
  check_output "matching case"
    "function f(x) { switch (x) { case 1: return \"one\"; case 2: return \"two\"; default: return \"many\"; } } print(f(1), f(2), f(5));"
    "one two many";
  check_output "fallthrough"
    "var log = \"\"; switch (2) { case 1: log += \"a\"; case 2: log += \"b\"; case 3: log += \"c\"; break; case 4: log += \"d\"; } print(log);"
    "bc";
  check_output "strict matching" "switch (\"1\") { case 1: print(\"int\"); break; default: print(\"none\"); }"
    "none";
  check_output "no default falls out" "var r = 0; switch (9) { case 1: r = 1; } print(r);" "0";
  check_output "default in the middle"
    "function f(x) { var log = \"\"; switch (x) { case 1: log += \"a\"; default: log += \"d\"; case 2: log += \"b\"; break; case 3: log += \"c\"; } return log; } print(f(1), f(2), f(3), f(7));"
    "adb b c db";
  check_output "break binds to switch, continue to loop"
    "var t = 0; for (var i = 0; i < 5; i++) { switch (i % 2) { case 0: continue; case 1: t += i; break; } t += 100; } print(t);"
    "204";
  check_output "case expressions evaluated lazily in order"
    "var n = 0; function probe(v) { n++; return v; } switch (2) { case probe(1): break; case probe(2): break; case probe(3): break; } print(n);"
    "2"

let test_typeof_and_equality () =
  check_output "typeof table"
    "print(typeof 1, typeof \"s\", typeof true, typeof undefined, typeof null, typeof [1], typeof print);"
    "number string boolean undefined object object function";
  check_output "loose vs strict" "print(1 == \"1\", 1 === \"1\", null == undefined);" "true false true"

let test_globals_across_functions () =
  check_output "global mutation"
    "var g = 0; function bump() { g += 1; } bump(); bump(); print(g);" "2";
  check_output "implicit global" "function f() { imp = 9; } f(); print(imp);" "9"

let test_builtin_integration () =
  check_output "math" "print(Math.floor(2.9), Math.abs(-3), Math.sqrt(81));" "2 3 9";
  check_output "fromCharCode" "print(String.fromCharCode(104, 105));" "hi";
  check_output "parseInt" "print(parseInt(\"42px\"), parseInt(\"ff\", 16));" "42 255"

let test_runtime_errors () =
  let expect_error src =
    match run_capture src with
    | exception Interp.Runtime_error _ -> ()
    | _ -> Alcotest.failf "expected runtime error for %s" src
  in
  expect_error "var x; x();";
  expect_error "null.p;";
  expect_error "undefined[0];";
  expect_error "var o = {}; o.missing();"

let test_deep_recursion_and_state () =
  check_output "mutual recursion"
    "function even(n) { return n == 0 ? true : odd(n - 1); } function odd(n) { return n == 0 ? false : even(n - 1); } print(even(100));"
    "true";
  check_output "fib memo with object cache"
    "var memo = {}; function fib(n) { if (n < 2) return n; var k = \"\" + n; if (memo[k] != undefined) return memo[k]; var r = fib(n-1) + fib(n-2); memo[k] = r; return r; } print(fib(40));"
    "102334155"

(* Property: random arithmetic expressions evaluate identically through the
   full pipeline and through direct AST-level evaluation with Ops. *)
let rec eval_ast (e : Jsfront.Ast.expr) : Value.t =
  match e with
  | Jsfront.Ast.Int n -> Value.of_int n
  | Jsfront.Ast.Float f -> Value.norm_num f
  | Jsfront.Ast.Binop (op, a, b) ->
    let o =
      match op with
      | Jsfront.Ast.Add -> Ops.Add
      | Jsfront.Ast.Sub -> Ops.Sub
      | Jsfront.Ast.Mul -> Ops.Mul
      | Jsfront.Ast.Div -> Ops.Div
      | Jsfront.Ast.Mod -> Ops.Mod
      | Jsfront.Ast.Bit_and -> Ops.Bit_and
      | Jsfront.Ast.Bit_or -> Ops.Bit_or
      | Jsfront.Ast.Bit_xor -> Ops.Bit_xor
      | Jsfront.Ast.Shl -> Ops.Shl
      | Jsfront.Ast.Shr -> Ops.Shr
      | Jsfront.Ast.Ushr -> Ops.Ushr
    in
    Ops.binop o (eval_ast a) (eval_ast b)
  | _ -> Alcotest.fail "generator produced unsupported node"

let gen_numeric_expr =
  let open QCheck.Gen in
  sized (fun n ->
      fix
        (fun self n ->
          if n <= 0 then
            oneof
              [
                map (fun i -> Jsfront.Ast.Int i) (int_range (-1000) 1000);
                (* Quarter-integers print exactly under %g, so the printed
                   program computes with the same constants. *)
                map
                  (fun i -> Jsfront.Ast.Float (float_of_int i /. 4.0))
                  (int_range (-4000) 4000);
              ]
          else
            map3
              (fun op a b -> Jsfront.Ast.Binop (op, a, b))
              (oneofl
                 Jsfront.Ast.[ Add; Sub; Mul; Div; Mod; Bit_and; Bit_or; Bit_xor; Shl; Shr ])
              (self (n / 2)) (self (n / 2)))
        n)

let prop_pipeline_matches_direct_eval =
  QCheck.Test.make ~name:"interpreter matches direct operator evaluation" ~count:300
    (QCheck.make ~print:Jsfront.Ast.expr_to_string gen_numeric_expr)
    (fun e ->
      let src = Printf.sprintf "__result = (%s);" (Jsfront.Ast.expr_to_string e) in
      let program = Bytecode.Compile.program_of_source src in
      let state, _ = Interp.run_program program in
      match Bytecode.Program.global_slot program "__result" with
      | None -> false
      | Some slot ->
        let got = state.Interp.globals.(slot) in
        let expected = eval_ast e in
        Value.same_value got expected
        ||
        (* NaN compares same_value-equal; doubles may differ at -0.0 which
           same_value distinguishes but JS === does not. Accept === too. *)
        Ops.strict_eq got expected)

let test_sort_comparator () =
  Alcotest.(check string) "numeric comparator" "1,2,3,5,40\n"
    (run_capture
       "var a = new Array(5, 1, 40, 3, 2); a.sort(function (x, y) { return x - y; }); print(a.join(\",\"));");
  Alcotest.(check string) "descending" "40,5,3,2,1\n"
    (run_capture
       "var a = new Array(5, 1, 40, 3, 2); a.sort(function (x, y) { return y - x; }); print(a.join(\",\"));");
  Alcotest.(check string) "no comparator sorts by string image" "1,10,100,9\n"
    (run_capture "var b = new Array(10, 9, 100, 1); b.sort(); print(b.join(\",\"));")

let test_for_in_enumeration () =
  Alcotest.(check string) "insertion order, overwrites keep position"
    "bacd 19\n"
    (run_capture "var o = { b: 1, a: 2, c: 3 }; o.d = 4; o.b = 10;\nvar ks = \"\"; var s = 0;\nfor (var k in o) { ks += k; s += o[k]; }\nprint(ks, s);");
  Alcotest.(check string) "array indices as strings" "39\n"
    (run_capture "var a = new Array(5, 6, 7); var t = 0;\nfor (var i in a) t += a[i] * 2 + i.length;\nprint(t);");
  Alcotest.(check string) "primitives enumerate nothing" "done\n"
    (run_capture "for (var e in 42) print(\"never\"); print(\"done\");")

let test_for_in_break_continue () =
  Alcotest.(check string) "continue skips, break stops" "110\n"
    (run_capture
       "var o = { x: 50, skip: 1000, y: 60, z: 70 };\nvar n = 0;\nfor (var k in o) { if (k == \"skip\") continue; n += o[k]; if (n > 100) break; }\nprint(n);")

let suites =
  [
    ( "interp.basics",
      [
        Alcotest.test_case "arithmetic" `Quick test_arithmetic;
        Alcotest.test_case "variables" `Quick test_variables;
        Alcotest.test_case "update expressions" `Quick test_update_expressions;
        Alcotest.test_case "control flow" `Quick test_control_flow;
        Alcotest.test_case "logic" `Quick test_logic;
      ] );
    ( "interp.functions",
      [
        Alcotest.test_case "functions" `Quick test_functions;
        Alcotest.test_case "closures" `Quick test_closures;
        Alcotest.test_case "mutual recursion, memoization" `Quick
          test_deep_recursion_and_state;
        Alcotest.test_case "globals" `Quick test_globals_across_functions;
      ] );
    ( "interp.data",
      [
        Alcotest.test_case "arrays" `Quick test_arrays;
        Alcotest.test_case "objects" `Quick test_objects;
        Alcotest.test_case "strings" `Quick test_strings;
        Alcotest.test_case "array higher-order methods" `Quick test_array_higher_order;
        Alcotest.test_case "switch statements" `Quick test_switch;
        Alcotest.test_case "sort with comparator" `Quick test_sort_comparator;
        Alcotest.test_case "for-in enumeration" `Quick test_for_in_enumeration;
        Alcotest.test_case "for-in break/continue" `Quick test_for_in_break_continue;
        Alcotest.test_case "typeof/equality" `Quick test_typeof_and_equality;
        Alcotest.test_case "builtins" `Quick test_builtin_integration;
        Alcotest.test_case "runtime errors" `Quick test_runtime_errors;
      ] );
    ( "interp.properties",
      [ QCheck_alcotest.to_alcotest prop_pipeline_matches_direct_eval ] );
  ]
