(* Focused tests for LIR lowering: phi-elimination move sequences
   (including the swap cycle that needs a temporary), snapshot-table
   sharing, layout/fallthrough, and stub placement. *)

open Runtime

let compile ?spec_args ?arg_tags ?(config = Pipeline.baseline) src fid =
  let program = Bytecode.Compile.program_of_source src in
  let func = program.Bytecode.Program.funcs.(fid) in
  let f = Builder.build ~program ~func ?spec_args ?arg_tags () in
  ignore (Pipeline.apply ~program config f);
  let code, _ = Regalloc.run (Lower.run f) in
  (func, code)

let exec code ~func ~args =
  let cb = { Exec.call = (fun _ _ -> Alcotest.fail "unexpected call"); globals = [||]; cycles = ref 0 } in
  let act = Exec.make_activation ~func ~args () in
  Exec.run cb code act ~at_osr:false

let value = Alcotest.testable Value.pp Value.same_value

let finished name expected = function
  | Exec.Finished v -> Alcotest.check value name expected v
  | Exec.Bailed b -> Alcotest.failf "%s: bailed (%s)" name b.Exec.bo_reason

(* The classic parallel-copy cycle: two loop-carried variables swapped every
   iteration. Phi elimination must break the cycle with a temporary; a naive
   sequentialization would compute fib wrong. *)
let test_swap_cycle () =
  let src =
    "function fib(n) { var a = 0, b = 1; for (var i = 0; i < n; i++) { var t = a + b; a = b; b = t; } return a; }"
  in
  let func, code = compile src 1 ~arg_tags:Value.[| Some Tag_int |] in
  finished "fib 10" (Value.Int 55) (exec code ~func ~args:[| Value.Int 10 |]);
  finished "fib 30" (Value.Int 832040) (exec code ~func ~args:[| Value.Int 30 |])

let test_three_way_rotation () =
  let src =
    "function rot(n) { var a = 1, b = 2, c = 3; for (var i = 0; i < n; i++) { var t = a; a = b; b = c; c = t; } return a * 100 + b * 10 + c; }"
  in
  let func, code = compile src 1 ~arg_tags:Value.[| Some Tag_int |] in
  finished "rotate 0" (Value.Int 123) (exec code ~func ~args:[| Value.Int 0 |]);
  finished "rotate 1" (Value.Int 231) (exec code ~func ~args:[| Value.Int 1 |]);
  finished "rotate 3" (Value.Int 123) (exec code ~func ~args:[| Value.Int 3 |])

let test_snapshot_sharing () =
  (* Guards born from the same bytecode instruction share one snapshot. *)
  let src = "function f(s, i) { return s[i]; }" in
  let _, code = compile src 1 ~arg_tags:Value.[| Some Tag_array; Some Tag_int |] in
  let snaps = Array.length code.Code.snapshots in
  let guards =
    Array.to_list code.Code.instrs
    |> List.filter (fun n ->
           match n with
           | Code.Op { snap = Some _; _ } -> true
           | _ -> false)
    |> List.length
  in
  Alcotest.(check bool) "snapshots deduplicated" true (snaps <= guards);
  Alcotest.(check bool) "has snapshots" true (snaps > 0)

let test_no_virtual_locations_in_snapshots () =
  let src = "function f(s, n) { var t = 0; for (var i = 0; i < n; i++) t += s[i]; return t; }" in
  let _, code = compile src 1 ~arg_tags:Value.[| Some Tag_array; Some Tag_int |] in
  Array.iter
    (fun s ->
      let check = function
        | Code.L (Code.V _) -> Alcotest.fail "virtual register in snapshot"
        | _ -> ()
      in
      Array.iter check s.Code.sn_args;
      Array.iter check s.Code.sn_locals;
      Array.iter check s.Code.sn_stack)
    code.Code.snapshots

let test_entry_offset_is_zero_with_osr () =
  (* With an OSR block present, the function entry must still be at 0. *)
  let program =
    Bytecode.Compile.program_of_source
      "function f(n) { var t = 0; for (var i = 0; i < n; i++) t += i; return t; }"
  in
  let func = program.Bytecode.Program.funcs.(1) in
  let osr =
    {
      (* pc 4 is the for-loop's Loop_head (after both initializers). *)
      Builder.osr_pc = 4;
      osr_args = [| Value.Int 100 |];
      (* locals are allocated alphabetically: slot 0 = i, slot 1 = t *)
      osr_locals = [| Value.Int 5; Value.Int 10 |];
      osr_specialize = true;
      osr_bake_locals = true;
    }
  in
  let f = Builder.build ~program ~func ~spec_args:[| Value.Int 100 |] ~osr () in
  ignore (Pipeline.apply ~program Pipeline.best f);
  let code, _ = Regalloc.run (Lower.run f) in
  (match code.Code.osr_offset with
  | Some o -> Alcotest.(check bool) "osr offset valid" true (o >= 0 && o < Code.size code)
  | None -> Alcotest.fail "expected an OSR offset");
  (* Entry path computes the full sum; OSR path continues from i=5,t=10. *)
  let run_at ~at_osr =
    let cb = { Exec.call = (fun _ _ -> assert false); globals = [||]; cycles = ref 0 } in
    let act =
      {
        Exec.act_args = [| Value.Int 100 |];
        act_env = [||];
        act_cells = [| ref Value.Undefined |];
        act_osr_args = [| Value.Int 100 |];
        act_osr_locals = [| Value.Int 5; Value.Int 10 |];
      }
    in
    match Exec.run cb code act ~at_osr with
    | Exec.Finished v -> v
    | Exec.Bailed b -> Alcotest.failf "bailed: %s" b.Exec.bo_reason
  in
  Alcotest.check value "entry path" (Value.Int 4950) (run_at ~at_osr:false);
  (* OSR with t=10 at i=5: 10 + sum(5..99) = 10 + 4950 - 10 = 4950. *)
  Alcotest.check value "osr path" (Value.Int 4950) (run_at ~at_osr:true)

let test_code_is_compact () =
  (* Jump-to-next elision: straight-line code contains no jumps at all. *)
  let _, code = compile "function f(a, b) { var x = a + b; var y = x * 2; return y - a; }" 1
      ~arg_tags:Value.[| Some Tag_int; Some Tag_int |]
  in
  let jumps =
    Array.to_list code.Code.instrs
    |> List.filter (fun n -> match n with Code.Jump _ -> true | _ -> false)
    |> List.length
  in
  Alcotest.(check int) "no jumps in straight-line code" 0 jumps

(* --- the native-code verifier --- *)

let test_verifier_accepts_compiled_code () =
  (* Every compile in the repository already passes through the verifier
     via the engine; here it runs on a standalone backend product, plus on
     a specialized + OSR variant. *)
  let src =
    "function f(n) { var t = 0; for (var i = 0; i < n; i++) t = (t + i * 3) | 0; return t; }"
  in
  let _, code = compile src 1 ~arg_tags:Value.[| Some Tag_int |] in
  Code_verify.run code;
  let _, code2 = compile src 1 ~spec_args:Value.[| Int 9 |] ~config:Pipeline.all_on in
  Code_verify.run code2

let test_verifier_rejects_virtual_register () =
  let _, code = compile "function f(a) { return a + 1; }" 1 in
  let broken =
    { code with
      Code.instrs =
        Array.map
          (fun n ->
            match n with
            | Code.Ret _ -> Code.Ret (Code.L (Code.V 99))
            | other -> other)
          code.Code.instrs
    }
  in
  match Code_verify.run broken with
  | exception Diag.Failed d ->
    Alcotest.(check bool) "mentions the vreg" true
      (String.length d.Diag.message > 0 && d.Diag.layer = "lir")
  | () -> Alcotest.fail "verifier accepted a surviving virtual register"

let test_verifier_rejects_uninitialized_read () =
  let _, code = compile "function f(a) { return a + 1; }" 1 in
  (* Redirect the return to a register nothing ever writes. *)
  let unused = Regalloc.num_registers - 1 in
  let broken =
    { code with
      Code.instrs =
        Array.map
          (fun n ->
            match n with
            | Code.Ret _ -> Code.Ret (Code.L (Code.R unused))
            | other -> other)
          code.Code.instrs
    }
  in
  match Code_verify.run broken with
  | exception Diag.Failed d ->
    Alcotest.(check bool) "mentions read-before-write" true
      (String.length d.Diag.message > 0 && d.Diag.layer = "lir")
  | () -> Alcotest.fail "verifier accepted an uninitialized read"

let test_verifier_rejects_bad_target () =
  let _, code = compile "function f(a) { return a + 1; }" 1 in
  let broken =
    { code with
      Code.instrs = Array.append code.Code.instrs [| Code.Jump 9999 |]
    }
  in
  match Code_verify.run broken with
  | exception Diag.Failed _ -> ()
  | () -> Alcotest.fail "verifier accepted an out-of-range jump target"

let suites =
  [
    ( "lir.lower",
      [
        Alcotest.test_case "swap cycle needs a temp" `Quick test_swap_cycle;
        Alcotest.test_case "three-way rotation" `Quick test_three_way_rotation;
        Alcotest.test_case "snapshot sharing" `Quick test_snapshot_sharing;
        Alcotest.test_case "snapshots fully allocated" `Quick
          test_no_virtual_locations_in_snapshots;
        Alcotest.test_case "OSR layout" `Quick test_entry_offset_is_zero_with_osr;
        Alcotest.test_case "fallthrough elision" `Quick test_code_is_compact;
        Alcotest.test_case "verifier accepts backend output" `Quick
          test_verifier_accepts_compiled_code;
        Alcotest.test_case "verifier rejects virtual register" `Quick
          test_verifier_rejects_virtual_register;
        Alcotest.test_case "verifier rejects uninitialized read" `Quick
          test_verifier_rejects_uninitialized_read;
        Alcotest.test_case "verifier rejects bad jump target" `Quick
          test_verifier_rejects_bad_target;
      ] );
  ]
