(* Test aggregator: one alcotest binary over every library's suites.
   `dune runtest` runs the quick set; slow (whole-suite / whole-harness)
   cases are included too since the full run stays under a minute. *)

let () =
  Alcotest.run "vs"
    (Test_support.suites @ Test_jsfront.suites @ Test_runtime.suites @ Test_bytecode.suites
   @ Test_interp.suites @ Test_mir.suites @ Test_opt.suites @ Test_backend.suites
   @ Test_lower.suites @ Test_eval.suites @ Test_engine.suites @ Test_workloads.suites
   @ Test_fuzz.suites @ Test_harness.suites @ Test_analysis.suites @ Test_absint.suites
   @ Test_telemetry.suites @ Test_policy.suites @ Test_faults.suites @ Test_parallel.suites
   @ Test_profile.suites @ Test_serve.suites @ Test_bg.suites @ Test_metrics.suites)
