(* Metrics-registry tests: the exact histogram (nearest-rank quantiles
   bit-for-bit equal to sorting the observations and indexing, lossless
   associative merge, the log-bucket export projection), rolling-window
   rates, and the registry itself (counter/gauge/histogram/rate cells,
   deterministic merge, the Prometheus/JSON/dashboard exports). *)

open Support

(* The reference the histogram must reproduce exactly: the service
   layer's original nearest-rank percentile over the sorted array. *)
let ref_percentile values p =
  let sorted = Array.of_list values in
  Array.sort compare sorted;
  let n = Array.length sorted in
  if n = 0 then 0
  else begin
    let rank = int_of_float (ceil (p *. float_of_int n)) - 1 in
    sorted.(min (n - 1) (max 0 rank))
  end

let hist_of values =
  let h = Metrics.Hist.create () in
  List.iter (Metrics.Hist.observe h) values;
  h

let sample_values prng n bound = List.init n (fun _ -> Prng.int prng bound)

let quantile_points = [ 0.0; 0.01; 0.25; 0.50; 0.75; 0.90; 0.95; 0.99; 1.0 ]

let test_quantile_matches_reference () =
  let prng = Prng.create 42 in
  List.iter
    (fun n ->
      let values = sample_values prng n 5000 in
      let h = hist_of values in
      List.iter
        (fun p ->
          Alcotest.(check int)
            (Printf.sprintf "n=%d p=%.2f" n p)
            (ref_percentile values p) (Metrics.Hist.quantile h p))
        quantile_points)
    [ 1; 2; 3; 7; 10; 100; 999 ]

let test_empty_histogram () =
  let h = Metrics.Hist.create () in
  Alcotest.(check int) "count" 0 (Metrics.Hist.count h);
  Alcotest.(check int) "sum" 0 (Metrics.Hist.sum h);
  List.iter
    (fun p ->
      Alcotest.(check int) "empty quantile is 0 (the serve convention)" 0
        (Metrics.Hist.quantile h p))
    quantile_points;
  Alcotest.(check bool) "buckets: just +Inf" true
    (Metrics.Hist.buckets h = [ (None, 0) ])

let test_one_sample () =
  let h = hist_of [ 17 ] in
  List.iter
    (fun p ->
      Alcotest.(check int) "every quantile is the sample" 17 (Metrics.Hist.quantile h p))
    quantile_points;
  Alcotest.(check int) "min" 17 (Metrics.Hist.min_value h);
  Alcotest.(check int) "max" 17 (Metrics.Hist.max_value h)

(* The merge is a lossless multiset union: associative, commutative, and
   equal to having observed everything into one histogram. *)
let test_merge_associative_and_lossless () =
  let prng = Prng.create 7 in
  let a = sample_values prng 57 400 in
  let b = sample_values prng 23 40000 in
  let c = sample_values prng 111 13 in
  let cells h = Metrics.Hist.values h in
  let ab_c = Metrics.Hist.merge (Metrics.Hist.merge (hist_of a) (hist_of b)) (hist_of c) in
  let a_bc = Metrics.Hist.merge (hist_of a) (Metrics.Hist.merge (hist_of b) (hist_of c)) in
  let ba = Metrics.Hist.merge (hist_of b) (hist_of a) in
  let serial = hist_of (a @ b @ c) in
  Alcotest.(check bool) "associative" true (cells ab_c = cells a_bc);
  Alcotest.(check bool) "commutative" true
    (cells ba = cells (Metrics.Hist.merge (hist_of a) (hist_of b)));
  Alcotest.(check bool) "merge equals serial observation" true (cells ab_c = cells serial);
  List.iter
    (fun p ->
      Alcotest.(check int) "quantiles survive the merge"
        (ref_percentile (a @ b @ c) p)
        (Metrics.Hist.quantile ab_c p))
    quantile_points;
  (* merge_into agrees with merge. *)
  let into = hist_of a in
  Metrics.Hist.merge_into ~into (hist_of b);
  Alcotest.(check bool) "merge_into" true
    (cells into = cells (Metrics.Hist.merge (hist_of a) (hist_of b)))

let test_buckets_projection () =
  let h = hist_of [ 1; 2; 3; 900; 5 ] in
  let buckets = Metrics.Hist.buckets h in
  (* Cumulative and ending at +Inf = count. *)
  let rec check_monotone prev = function
    | [] -> Alcotest.fail "no +Inf bucket"
    | [ (None, c) ] -> Alcotest.(check int) "+Inf equals count" (Metrics.Hist.count h) c
    | (Some _, c) :: rest ->
      Alcotest.(check bool) "cumulative" true (c >= prev);
      check_monotone c rest
    | (None, _) :: _ -> Alcotest.fail "+Inf bucket not last"
  in
  check_monotone 0 buckets;
  (* Upper bounds are 0 then powers of two covering the max value. *)
  let les = List.filter_map fst buckets in
  (match les with
  | 0 :: rest ->
    List.iteri
      (fun i le -> Alcotest.(check int) "power of two" (1 lsl i) le)
      rest
  | _ -> Alcotest.fail "first bound is not 0");
  Alcotest.(check bool) "bounds cover the max" true
    (List.exists (fun le -> le >= 900) les)

(* --- rates ----------------------------------------------------------- *)

let test_rate_window () =
  let r = Metrics.Rate.create ~window:100 in
  Metrics.Rate.tick r ~now:10;
  Metrics.Rate.tick ~n:3 r ~now:50;
  Metrics.Rate.tick r ~now:105;
  (* Window is (last - 100, last] = (5, 105]: everything counts. *)
  Alcotest.(check int) "all inside" 5 (Metrics.Rate.current r);
  Metrics.Rate.tick r ~now:160;
  (* (60, 160]: the ticks at 10 and 50 have aged out. *)
  Alcotest.(check int) "old ticks age out" 2 (Metrics.Rate.current r);
  Alcotest.(check (float 1e-9)) "per Mcycle" (2e6 /. 100.0) (Metrics.Rate.per_mcycle r)

(* --- the registry ---------------------------------------------------- *)

let test_registry_cells () =
  let m = Metrics.create () in
  let l = [ ("isolate", "0") ] in
  Metrics.inc m "req" l;
  Metrics.inc ~n:4 m "req" l;
  Alcotest.(check int) "counter" 5 (Metrics.get_counter m "req" l);
  Alcotest.(check int) "absent counter reads 0" 0 (Metrics.get_counter m "req" [ ("isolate", "1") ]);
  Metrics.max_gauge m "depth" l 3;
  Metrics.max_gauge m "depth" l 1;
  Alcotest.(check int) "max gauge keeps the high-water mark" 3 (Metrics.get_gauge m "depth" l);
  Metrics.set_gauge m "depth" l 2;
  Alcotest.(check int) "set gauge overwrites" 2 (Metrics.get_gauge m "depth" l);
  Metrics.observe m "lat" l 10;
  Metrics.observe m "lat" l 30;
  (match Metrics.find_hist m "lat" l with
  | Some h -> Alcotest.(check int) "histogram cell" 2 (Metrics.Hist.count h)
  | None -> Alcotest.fail "histogram not registered");
  (* Labels canonicalize: order does not matter. *)
  Metrics.inc m "multi" [ ("b", "2"); ("a", "1") ];
  Alcotest.(check int) "label order canonicalized" 1
    (Metrics.get_counter m "multi" [ ("a", "1"); ("b", "2") ])

let test_registry_merge () =
  let a = Metrics.create () in
  let b = Metrics.create () in
  let l0 = [ ("isolate", "0") ] and l1 = [ ("isolate", "1") ] in
  Metrics.inc ~n:2 a "req" l0;
  Metrics.inc ~n:3 b "req" l0;
  Metrics.inc b "req" l1;
  Metrics.max_gauge a "depth" l0 5;
  Metrics.max_gauge b "depth" l0 3;
  Metrics.observe a "lat" l0 10;
  Metrics.observe b "lat" l0 20;
  let m = Metrics.create () in
  Metrics.merge_into ~into:m a;
  Metrics.merge_into ~into:m b;
  Alcotest.(check int) "counters add" 5 (Metrics.get_counter m "req" l0);
  Alcotest.(check int) "disjoint labels survive" 1 (Metrics.get_counter m "req" l1);
  Alcotest.(check int) "gauges keep the max" 5 (Metrics.get_gauge m "depth" l0);
  match Metrics.find_hist m "lat" l0 with
  | Some h ->
    Alcotest.(check bool) "histograms union" true
      (Metrics.Hist.values h = [ (10, 1); (20, 1) ])
  | None -> Alcotest.fail "merged histogram missing"

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  go 0

let test_exports () =
  let m = Metrics.create () in
  let l = [ ("isolate", "0"); ("policy", "paper") ] in
  Metrics.inc ~n:7 m "serve.requests" l;
  Metrics.observe m "serve.latency.cycles" l 12;
  Metrics.observe m "serve.latency.cycles" l 90;
  Metrics.tick_rate ~n:2 m "serve.arrivals" l ~window:1000 ~now:500;
  let prom = Metrics.to_prometheus m in
  Alcotest.(check bool) "TYPE lines" true
    (contains ~sub:"# TYPE serve_requests counter" prom
    && contains ~sub:"# TYPE serve_latency_cycles histogram" prom);
  Alcotest.(check bool) "sanitized sample with labels" true
    (contains ~sub:{|serve_requests{isolate="0",policy="paper"} 7|} prom);
  Alcotest.(check bool) "+Inf bucket" true (contains ~sub:{|le="+Inf"|} prom);
  Alcotest.(check bool) "histogram count" true
    (contains ~sub:{|serve_latency_cycles_count{isolate="0",policy="paper"} 2|} prom);
  let json = Metrics.snapshot_json ~cycle:123 m in
  Alcotest.(check bool) "snapshot schema + cycle" true
    (contains ~sub:{|"schema":"vs-metrics/1"|} json && contains ~sub:{|"cycle":123|} json);
  Alcotest.(check bool) "snapshot is one line" true
    (not (String.contains json '\n'));
  let top = Metrics.render_top m in
  Alcotest.(check bool) "dashboard mentions the metrics" true
    (contains ~sub:"serve.requests" top && contains ~sub:"serve.latency.cycles" top)

(* Byte-determinism of the exports under merge order is what the CLI
   relies on: merging [a] into [b]'s clone must render the same text as
   observing serially. *)
let test_export_deterministic_under_merge () =
  let observe_all m =
    List.iter
      (fun (name, l, v) -> Metrics.observe m name l v)
      [
        ("lat", [ ("i", "0") ], 5);
        ("lat", [ ("i", "1") ], 7);
        ("lat", [ ("i", "0") ], 5);
        ("lat", [ ("i", "1") ], 1);
      ]
  in
  let serial = Metrics.create () in
  observe_all serial;
  let a = Metrics.create () and b = Metrics.create () in
  Metrics.observe a "lat" [ ("i", "0") ] 5;
  Metrics.observe a "lat" [ ("i", "1") ] 7;
  Metrics.observe b "lat" [ ("i", "0") ] 5;
  Metrics.observe b "lat" [ ("i", "1") ] 1;
  let merged = Metrics.create () in
  Metrics.merge_into ~into:merged a;
  Metrics.merge_into ~into:merged b;
  Alcotest.(check string) "prometheus text identical" (Metrics.to_prometheus serial)
    (Metrics.to_prometheus merged);
  Alcotest.(check string) "snapshot identical"
    (Metrics.snapshot_json ~cycle:9 serial)
    (Metrics.snapshot_json ~cycle:9 merged)

let suites =
  [
    ( "metrics.hist",
      [
        Alcotest.test_case "nearest-rank quantiles match the reference" `Quick
          test_quantile_matches_reference;
        Alcotest.test_case "empty histogram" `Quick test_empty_histogram;
        Alcotest.test_case "one sample" `Quick test_one_sample;
        Alcotest.test_case "merge: associative, commutative, lossless" `Quick
          test_merge_associative_and_lossless;
        Alcotest.test_case "log-bucket projection" `Quick test_buckets_projection;
      ] );
    ( "metrics.registry",
      [
        Alcotest.test_case "rate window" `Quick test_rate_window;
        Alcotest.test_case "cells" `Quick test_registry_cells;
        Alcotest.test_case "merge" `Quick test_registry_merge;
        Alcotest.test_case "exports" `Quick test_exports;
        Alcotest.test_case "exports deterministic under merge" `Quick
          test_export_deterministic_under_merge;
      ] );
  ]
