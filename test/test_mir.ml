(* Tests for MIR construction, CFG analyses, the typer and the verifier. *)

open Runtime

let build_fn ?spec_args ?arg_tags ?osr src fid =
  let program = Bytecode.Compile.program_of_source src in
  let func = program.Bytecode.Program.funcs.(fid) in
  let f = Builder.build ~program ~func ?spec_args ?arg_tags ?osr () in
  Typer.run f;
  Verify.run f;
  (program, f)

let map_src =
  {|
function inc(x) { return x + 1; }
function map(s, b, n, f) {
  var i = b;
  while (i < n) { s[i] = f(s[i]); i++; }
  return s;
}
print(map(new Array(1, 2, 3, 4, 5), 2, 5, inc));
|}

let sample_array n = Value.Arr (Value.arr_of_list (List.init n (fun i -> Value.Int i)))

let spec_args_for_map () =
  [|
    sample_array 5; Value.Int 2; Value.Int 5;
    Value.Closure { Value.fid = 1; env = [||]; cid = Value.fresh_id () };
  |]

let count_kind f pred =
  let n = ref 0 in
  Mir.iter_instrs f (fun i -> if pred i.Mir.kind then incr n);
  !n

let test_generic_build_shape () =
  let _, f = build_fn map_src 2 in
  Alcotest.(check int) "four parameters" 4
    (count_kind f (function Mir.Parameter _ -> true | _ -> false));
  Alcotest.(check bool) "has phis" true
    (count_kind f (function Mir.Phi _ -> true | _ -> false) > 0);
  Alcotest.(check int) "no OSR block" 0 (match f.Mir.osr_entry with Some _ -> 1 | None -> 0);
  (* Untagged parameters are boxed, so element access is generic. *)
  Alcotest.(check bool) "generic elem access" true
    (count_kind f (function Mir.Elem_generic _ -> true | _ -> false) > 0)

let test_tagged_build_uses_guards () =
  let tags = Value.[| Some Tag_array; Some Tag_int; Some Tag_int; Some Tag_function |] in
  let _, f = build_fn ~arg_tags:tags map_src 2 in
  Alcotest.(check int) "one barrier per tagged arg" 4
    (count_kind f (function Mir.Type_barrier _ -> true | _ -> false));
  Alcotest.(check bool) "guarded fast-path loads" true
    (count_kind f (function Mir.Load_elem _ -> true | _ -> false) > 0);
  Alcotest.(check bool) "bounds checks present" true
    (count_kind f (function Mir.Bounds_check _ -> true | _ -> false) > 0)

let test_specialized_build_constants () =
  let _, f = build_fn ~spec_args:(spec_args_for_map ()) map_src 2 in
  Alcotest.(check int) "no parameters remain" 0
    (count_kind f (function Mir.Parameter _ -> true | _ -> false));
  Alcotest.(check int) "no type barriers" 0
    (count_kind f (function Mir.Type_barrier _ -> true | _ -> false));
  (* The callee flows through the loop phi at build time; after GVN's phi
     simplification the call site sees the constant closure and becomes a
     direct call. *)
  ignore (Gvn.run f);
  Verify.run f;
  let direct = ref false in
  Mir.iter_instrs f (fun i ->
      match i.Mir.kind with
      | Mir.Call (callee, _) | Mir.Call_known (_, callee, _) -> (
        match (Hashtbl.find f.Mir.defs callee).Mir.kind with
        | Mir.Constant (Value.Closure _) -> direct := true
        | _ -> ())
      | _ -> ());
  Alcotest.(check bool) "call through constant closure after GVN" true !direct

let test_osr_block_shape () =
  let spec = spec_args_for_map () in
  let osr =
    { Builder.osr_pc = 2; osr_args = spec; osr_locals = [| Value.Int 2 |]; osr_specialize = true; osr_bake_locals = true }
  in
  let _, f = build_fn ~spec_args:spec ~osr map_src 2 in
  match f.Mir.osr_entry with
  | None -> Alcotest.fail "expected an OSR entry"
  | Some ob ->
    let b = Mir.block f ob in
    Alcotest.(check int) "osr block defines args+locals" 5 (List.length b.Mir.body);
    Alcotest.(check bool) "all specialized to constants" true
      (List.for_all
         (fun (i : Mir.instr) ->
           match i.Mir.kind with Mir.Constant _ -> true | _ -> false)
         b.Mir.body)

let test_osr_generic_is_typed () =
  let osr =
    {
      Builder.osr_pc = 2;
      osr_args = spec_args_for_map ();
      osr_locals = [| Value.Int 2 |];
      osr_specialize = false;
      osr_bake_locals = true;
    }
  in
  let _, f = build_fn ~osr map_src 2 in
  match f.Mir.osr_entry with
  | None -> Alcotest.fail "expected an OSR entry"
  | Some ob ->
    let b = Mir.block f ob in
    let tys = List.map (fun (i : Mir.instr) -> i.Mir.ty) b.Mir.body in
    Alcotest.(check bool) "osr loads typed from the frame" true
      (List.mem Mir.Ty_array tys && List.mem Mir.Ty_int32 tys)

let test_typer_types_loop_counter () =
  let src = "function f(n) { var t = 0; for (var i = 0; i < n; i++) t += i; return t; }" in
  let program = Bytecode.Compile.program_of_source src in
  let func = program.Bytecode.Program.funcs.(1) in
  let f = Builder.build ~program ~func ~spec_args:[| Value.Int 100 |] () in
  Typer.run f;
  Verify.run f;
  let checked_int_adds =
    count_kind f (function Mir.Binop (Ops.Add, _, _, Mir.Mode_int) -> true | _ -> false)
  in
  Alcotest.(check bool) "loop arithmetic runs on the int32 fast path" true
    (checked_int_adds >= 2)

let test_dominators () =
  let _, f = build_fn map_src 2 in
  let doms = Cfg.dominators f in
  List.iter
    (fun bid ->
      Alcotest.(check bool) "entry dominates everything" true
        (Cfg.dominates doms f.Mir.entry bid);
      Alcotest.(check bool) "reflexive" true (Cfg.dominates doms bid bid))
    (Mir.reverse_postorder f)

let test_natural_loops () =
  let _, f = build_fn map_src 2 in
  let loops = Cfg.natural_loops f (Cfg.dominators f) in
  Alcotest.(check int) "one loop" 1 (List.length loops);
  let loop = List.hd loops in
  Alcotest.(check int) "single latch" 1 (List.length loop.Cfg.latches);
  Alcotest.(check bool) "header in body" true (List.mem loop.Cfg.header loop.Cfg.body);
  Alcotest.(check int) "loop depth inside" 1 (Cfg.loop_depth loops loop.Cfg.header)

let test_nested_loops () =
  let src =
    "function f(n) { var t = 0; for (var i = 0; i < n; i++) { for (var j = 0; j < i; j++) t++; } return t; }"
  in
  let _, f = build_fn src 1 in
  let loops = Cfg.natural_loops f (Cfg.dominators f) in
  Alcotest.(check int) "two loops" 2 (List.length loops);
  match loops with
  | [ outer; inner ] ->
    Alcotest.(check bool) "outer contains inner header" true
      (List.mem inner.Cfg.header outer.Cfg.body);
    Alcotest.(check int) "inner header depth 2" 2 (Cfg.loop_depth loops inner.Cfg.header)
  | _ -> Alcotest.fail "expected ordered loops"

let test_verifier_catches_bad_phi () =
  let _, f = build_fn map_src 2 in
  (* Corrupt a phi: drop one operand. *)
  let corrupted = ref false in
  Hashtbl.iter
    (fun _ b ->
      List.iter
        (fun (phi : Mir.instr) ->
          match phi.Mir.kind with
          | Mir.Phi ops when Array.length ops > 1 && not !corrupted ->
            phi.Mir.kind <- Mir.Phi (Array.sub ops 0 (Array.length ops - 1));
            corrupted := true
          | _ -> ())
        b.Mir.phis)
    f.Mir.blocks;
  Alcotest.(check bool) "did corrupt" true !corrupted;
  match Verify.run f with
  | exception Diag.Failed _ -> ()
  | () -> Alcotest.fail "verifier accepted a corrupted graph"

let test_verifier_catches_missing_rp () =
  let _, f = build_fn ~arg_tags:Value.[| Some Tag_array; None; None; None |] map_src 2 in
  let stripped = ref false in
  Mir.iter_instrs f (fun i ->
      if (not !stripped) && Mir.is_guard i.Mir.kind then begin
        i.Mir.rp <- None;
        stripped := true
      end);
  Alcotest.(check bool) "did strip" true !stripped;
  match Verify.run f with
  | exception Diag.Failed _ -> ()
  | () -> Alcotest.fail "verifier accepted guard without resume point"

let test_resume_points_recorded () =
  let _, f = build_fn ~arg_tags:Value.[| Some Tag_array; Some Tag_int; Some Tag_int; Some Tag_function |] map_src 2 in
  Mir.iter_instrs f (fun i ->
      if Mir.is_guard i.Mir.kind then
        match i.Mir.rp with
        | None -> Alcotest.fail "guard without rp"
        | Some rp ->
          Alcotest.(check int) "args tracked" 4 (Array.length rp.Mir.rp_args);
          Alcotest.(check int) "locals tracked" 1 (Array.length rp.Mir.rp_locals))

(* Structural property: for every function of every suite member, the
   builder produces verifiable graphs in generic mode, tagged mode, and
   with an OSR entry at every loop head. *)
let test_build_all_suite_functions_all_modes () =
  List.iter
    (fun (suite : Suite.t) ->
      List.iter
        (fun (m : Suite.member) ->
          let program = Bytecode.Compile.program_of_source m.Suite.m_source in
          Array.iter
            (fun (func : Bytecode.Program.func) ->
              let check f =
                Typer.run f;
                Verify.run f
              in
              check (Builder.build ~program ~func ());
              (* Worst-case tags: everything observed as Int. *)
              let tags = Array.make func.Bytecode.Program.arity (Some Value.Tag_int) in
              check (Builder.build ~program ~func ~arg_tags:tags ());
              (* OSR at every loop head, generic state. *)
              Array.iteri
                (fun pc instr ->
                  match instr with
                  | Bytecode.Instr.Loop_head _ ->
                    let osr =
                      {
                        Builder.osr_pc = pc;
                        osr_args =
                          Array.make func.Bytecode.Program.arity (Value.Int 1);
                        osr_locals =
                          Array.make func.Bytecode.Program.nlocals Value.Undefined;
                        osr_specialize = false;
                        osr_bake_locals = true;
                      }
                    in
                    check (Builder.build ~program ~func ~osr ())
                  | _ -> ())
                func.Bytecode.Program.code)
            program.Bytecode.Program.funcs)
        suite.Suite.members)
    Suites.all

let suites =
  [
    ( "mir.builder",
      [
        Alcotest.test_case "generic build" `Quick test_generic_build_shape;
        Alcotest.test_case "type-tagged build" `Quick test_tagged_build_uses_guards;
        Alcotest.test_case "specialized build" `Quick test_specialized_build_constants;
        Alcotest.test_case "OSR block specialized" `Quick test_osr_block_shape;
        Alcotest.test_case "OSR block typed (generic)" `Quick test_osr_generic_is_typed;
        Alcotest.test_case "resume points" `Quick test_resume_points_recorded;
      ] );
    ( "mir.typer",
      [ Alcotest.test_case "loop counter typed int32" `Quick test_typer_types_loop_counter ]
    );
    ( "mir.cfg",
      [
        Alcotest.test_case "dominators" `Quick test_dominators;
        Alcotest.test_case "natural loops" `Quick test_natural_loops;
        Alcotest.test_case "nested loops" `Quick test_nested_loops;
      ] );
    ( "mir.structural",
      [
        Alcotest.test_case "all suite functions, all modes, all OSR points" `Slow
          test_build_all_suite_functions_all_modes;
      ] );
    ( "mir.verify",
      [
        Alcotest.test_case "catches phi arity" `Quick test_verifier_catches_bad_phi;
        Alcotest.test_case "catches missing rp" `Quick test_verifier_catches_missing_rp;
      ] );
  ]
