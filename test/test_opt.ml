(* Tests for the optimization passes, anchored on the paper's Section 3
   running example (Figures 6-8), plus generated-program properties:
   every pass pipeline must keep the verifier happy and must not change
   observable behaviour. *)

open Runtime

let map_src =
  {|
function inc(x) { return x + 1; }
function map(s, b, n, f) {
  var i = b;
  while (i < n) { s[i] = f(s[i]); i++; }
  return s;
}
print(map(new Array(1, 2, 3, 4, 5), 2, 5, inc));
|}

let build_map ?osr () =
  let program = Bytecode.Compile.program_of_source map_src in
  let func = program.Bytecode.Program.funcs.(2) in
  let spec_args =
    [|
      Value.Arr (Value.arr_of_list (List.init 5 (fun i -> Value.Int (i + 1))));
      Value.Int 2; Value.Int 5;
      Value.Closure { Value.fid = 1; env = [||]; cid = Value.fresh_id () };
    |]
  in
  let osr =
    match osr with
    | Some true ->
      Some
        {
          Builder.osr_pc = 2;
          osr_args = spec_args;
          osr_locals = [| Value.Int 2 |];
          osr_specialize = true;
          osr_bake_locals = true;
        }
    | _ -> None
  in
  let f = Builder.build ~program ~func ~spec_args ?osr () in
  (program, f)

let count f pred =
  let n = ref 0 in
  Mir.iter_instrs f (fun i -> if pred i.Mir.kind then incr n);
  !n

let apply program config f =
  let stats = Pipeline.apply ~program config f in
  Verify.run f;
  stats

(* --- constant propagation (§3.3) --- *)

let test_constprop_folds_guards () =
  let program, f = build_map () in
  Typer.run f;
  let checks_before = count f (function Mir.Check_array _ -> true | _ -> false) in
  Alcotest.(check bool) "array checks present before" true (checks_before > 0);
  let stats = apply program (Pipeline.make ~ps:true ~cp:true "cp") f in
  Alcotest.(check bool) "folded several instructions" true (stats.Pipeline.folded > 0);
  Alcotest.(check int) "all array checks folded away" 0
    (count f (function Mir.Check_array _ -> true | _ -> false))

let test_constprop_folds_comparison () =
  let src = "function f(a, b) { return a < b ? typeof a : \"no\"; }" in
  let program = Bytecode.Compile.program_of_source src in
  let func = program.Bytecode.Program.funcs.(1) in
  let f = Builder.build ~program ~func ~spec_args:[| Value.Int 1; Value.Int 2 |] () in
  let _ = apply program (Pipeline.make ~ps:true ~cp:true ~dce:true "cpdce") f in
  (* a < b and typeof a are compile-time constants; with DCE the function
     collapses to returning the constant string. *)
  Alcotest.(check int) "no comparisons left" 0
    (count f (function Mir.Cmp _ -> true | _ -> false));
  let has_const_typeof = ref false in
  Mir.iter_instrs f (fun i ->
      match i.Mir.kind with
      | Mir.Constant (Value.Str "number") -> has_const_typeof := true
      | _ -> ());
  Alcotest.(check bool) "typeof folded to \"number\"" true !has_const_typeof

let test_constprop_folds_pure_natives () =
  (* The native function arrives as a specialized parameter, the same way
     `inc` does in the paper's example. *)
  let src = "function f(pow, x) { return pow(x, 10) + 1; }" in
  let program = Bytecode.Compile.program_of_source src in
  let func = program.Bytecode.Program.funcs.(1) in
  let f =
    Builder.build ~program ~func
      ~spec_args:[| Value.Native_fun "Math.pow"; Value.Int 2 |] ()
  in
  let _ = apply program (Pipeline.make ~ps:true ~cp:true "cp") f in
  let folded_pow = ref false in
  Mir.iter_instrs f (fun i ->
      match i.Mir.kind with
      | Mir.Constant (Value.Int 1025) -> folded_pow := true
      | _ -> ());
  Alcotest.(check bool) "Math.pow folded at compile time" true !folded_pow

let test_constprop_lattice_laws () =
  (* The meet operator of §3.3 must be commutative/associative/idempotent.
     We test it through observable folding: phi of equal constants folds,
     phi of different constants does not. *)
  let src = "function f(c) { var x; if (c) x = 4; else x = 4; return x + 1; }" in
  let program = Bytecode.Compile.program_of_source src in
  let func = program.Bytecode.Program.funcs.(1) in
  let f = Builder.build ~program ~func () in
  let _ = apply program (Pipeline.make ~cp:true "cp") f in
  let has_five = ref false in
  Mir.iter_instrs f (fun i ->
      match i.Mir.kind with Mir.Constant (Value.Int 5) -> has_five := true | _ -> ());
  Alcotest.(check bool) "phi(4,4)+1 folded to 5" true !has_five

(* --- dead code elimination (§3.5) --- *)

let test_dce_removes_wrapping_conditional () =
  let program, f = build_map () in
  let stats = apply program (Pipeline.make ~ps:true ~cp:true ~li:true ~dce:true "all") f in
  Alcotest.(check int) "one loop inverted" 1 stats.Pipeline.loops_inverted;
  Alcotest.(check bool) "wrapping conditional folded" true
    (stats.Pipeline.branches_folded >= 1)

let test_dce_keeps_entry_block () =
  let program, f = build_map () in
  let entry = f.Mir.entry in
  let _ = apply program (Pipeline.make ~ps:true ~cp:true ~dce:true "x") f in
  Alcotest.(check bool) "entry block still laid out" true
    (List.mem entry f.Mir.block_order)

let test_dce_respects_snapshots () =
  (* A value only used by a guard's resume point must survive DCE. *)
  let src = "function f(a, n) { var big = n * 1000; return a[n] + (big - big); }" in
  let program = Bytecode.Compile.program_of_source src in
  let func = program.Bytecode.Program.funcs.(1) in
  let tags = Value.[| Some Tag_array; Some Tag_int |] in
  let f = Builder.build ~program ~func ~arg_tags:tags () in
  let _ = apply program (Pipeline.make ~cp:true ~dce:true "x") f in
  (* Just verifying suffices: dangling rp operands would fail Verify. *)
  ()

(* --- loop inversion (§3.4) --- *)

let test_inversion_moves_test_to_latch () =
  let program, f = build_map () in
  let stats = apply program (Pipeline.make ~ps:true ~cp:true ~li:true "li") f in
  Alcotest.(check int) "inverted" 1 stats.Pipeline.loops_inverted;
  (* After inversion the loop has a conditional latch: some block branches
     with one in-loop and one out-of-loop target whose condition is computed
     in the same block (bottom-tested loop). *)
  let doms = Cfg.dominators f in
  let loops = Cfg.natural_loops f doms in
  Alcotest.(check int) "still one natural loop" 1 (List.length loops);
  let loop = List.hd loops in
  List.iter
    (fun latch ->
      match (Mir.block f latch).Mir.term with
      | Mir.Branch _ -> ()
      | _ -> Alcotest.fail "latch should be conditional after inversion")
    loop.Cfg.latches

let test_inversion_preserves_zero_trip () =
  (* If the loop runs zero times the wrapping conditional must skip it. *)
  let src =
    "function f(n) { var t = 100; for (var i = 0; i < n; i++) t = 0; return t; }\n\
     print(f(0), f(3));"
  in
  let run opt =
    let buf = Buffer.create 16 in
    Builtins.with_print_hook (Buffer.add_string buf) (fun () ->
        ignore (Engine.run_source (Engine.default_config ~opt ()) src);
        Buffer.contents buf)
  in
  Alcotest.(check string) "li config matches baseline" (run Pipeline.baseline)
    (run (Pipeline.make ~ps:true ~cp:true ~li:true "li"))

(* --- bounds check elimination (§3.6) --- *)

let read_only_loop =
  {|
function sumto(s, n) {
  var t = 0;
  for (var i = 0; i < n; i++) t += s[i];
  return t;
}
|}

let build_sumto () =
  let program = Bytecode.Compile.program_of_source read_only_loop in
  let func = program.Bytecode.Program.funcs.(1) in
  let arr = Value.Arr (Value.arr_of_list (List.init 8 (fun i -> Value.Int i))) in
  let f = Builder.build ~program ~func ~spec_args:[| arr; Value.Int 8 |] () in
  (program, f)

let test_bce_removes_proven_checks () =
  let program, f = build_sumto () in
  let stats = apply program (Pipeline.make ~ps:true ~cp:true ~bce:true ~ge:false "bce") f in
  Alcotest.(check bool) "bounds checks removed" true (stats.Pipeline.bounds_removed > 0);
  Alcotest.(check int) "none remain" 0
    (count f (function Mir.Bounds_check _ -> true | _ -> false))

let test_bce_keeps_unprovable_checks () =
  let program = Bytecode.Compile.program_of_source read_only_loop in
  let func = program.Bytecode.Program.funcs.(1) in
  let arr = Value.Arr (Value.arr_of_list (List.init 8 (fun i -> Value.Int i))) in
  (* Bound 9 exceeds the array length: the check must stay. *)
  let f = Builder.build ~program ~func ~spec_args:[| arr; Value.Int 9 |] () in
  let stats = apply program (Pipeline.make ~ps:true ~cp:true ~bce:true ~ge:false "bce") f in
  Alcotest.(check int) "nothing removed" 0 stats.Pipeline.bounds_removed

let test_bce_store_conservatism () =
  (* Element stores only grow arrays in this VM, so a fill loop is already
     eliminable in the conservative mode... *)
  let src =
    "function fill(s, n) { for (var i = 0; i < n; i++) s[i] = i; return s; }"
  in
  let program = Bytecode.Compile.program_of_source src in
  let func = program.Bytecode.Program.funcs.(1) in
  let arr = Value.Arr (Value.new_arr 8) in
  let build () = Builder.build ~program ~func ~spec_args:[| arr; Value.Int 8 |] () in
  let s1 = apply program (Pipeline.make ~ps:true ~cp:true ~bce:true ~ge:false "bce") (build ()) in
  Alcotest.(check bool) "growth-only stores do not block" true
    (s1.Pipeline.bounds_removed > 0);
  (* ...but an opaque call might reach a pop on an alias, so it blocks the
     conservative mode and only the paper's precise-alias assumption
     (Figure 8b) lifts it. *)
  let srcc =
    "function f(s, n, g) { var t = 0; for (var i = 0; i < n; i++) t = (t + s[i] + g(i)) | 0; return t; }"
  in
  let programc = Bytecode.Compile.program_of_source srcc in
  let funcc = programc.Bytecode.Program.funcs.(1) in
  let clo = Value.Closure { Value.fid = 1; env = [||]; cid = Value.fresh_id () } in
  let buildc () =
    Builder.build ~program:programc ~func:funcc
      ~spec_args:[| Value.Arr (Value.new_arr 8); Value.Int 8; clo |] ()
  in
  let s2 = apply programc (Pipeline.make ~ps:true ~cp:true ~bce:true ~ge:false "bce") (buildc ()) in
  Alcotest.(check int) "call blocks conservative mode" 0 s2.Pipeline.bounds_removed;
  let s3 =
    apply programc
      (Pipeline.make ~ps:true ~cp:true ~bce:true ~precise_alias:true ~ge:false "bce+")
      (buildc ())
  in
  Alcotest.(check bool) "precise aliasing eliminates past the call" true
    (s3.Pipeline.bounds_removed > 0);
  (* A shrinking method call blocks in BOTH modes: the compile-time length
     is no longer a lower bound on the runtime length. *)
  let srcp =
    "function f(s, n) { var t = 0; for (var i = 0; i < n; i++) t = (t + s[i]) | 0; s.pop(); return t; }"
  in
  let programp = Bytecode.Compile.program_of_source srcp in
  let funcp = programp.Bytecode.Program.funcs.(1) in
  let fp =
    Builder.build ~program:programp ~func:funcp
      ~spec_args:[| Value.Arr (Value.new_arr 8); Value.Int 4 |] ()
  in
  let s4 =
    apply programp
      (Pipeline.make ~ps:true ~cp:true ~bce:true ~precise_alias:true ~ge:false "bce+")
      fp
  in
  Alcotest.(check int) "pop blocks even precise mode" 0 s4.Pipeline.bounds_removed

let test_overflow_check_elimination () =
  let program, f = build_sumto () in
  let s =
    apply program
      (Pipeline.make ~ps:true ~cp:true ~bce:true ~overflow_elim:true "ovf") f
  in
  Alcotest.(check bool) "induction step proven overflow-free" true
    (s.Pipeline.overflow_removed > 0);
  Alcotest.(check bool) "unchecked int add present" true
    (count f (function
       | Mir.Binop (Ops.Add, _, _, Mir.Mode_int_nocheck) -> true
       | _ -> false)
    > 0)

(* --- loop unrolling (§6 extension) --- *)

let test_unroll_constant_trip_loop () =
  let src =
    "function f(s, n) { var t = 0; for (var i = 0; i < n; i++) t = (t + s[i]) | 0; return t; }"
  in
  let program = Bytecode.Compile.program_of_source src in
  let func = program.Bytecode.Program.funcs.(1) in
  let arr = Value.Arr (Value.arr_of_list (List.init 5 (fun i -> Value.Int (i * i)))) in
  let f = Builder.build ~program ~func ~spec_args:[| arr; Value.Int 5 |] () in
  let stats =
    apply program (Pipeline.make ~ps:true ~cp:true ~dce:true ~loop_unroll:true "u") f
  in
  Alcotest.(check int) "one loop unrolled" 1 stats.Pipeline.unrolled;
  (* No loops remain, and the indices are the constants 0..4. *)
  let loops = Cfg.natural_loops f (Cfg.dominators f) in
  Alcotest.(check int) "no loops left" 0 (List.length loops);
  let code, _ = Regalloc.run (Lower.run f) in
  let cb = { Exec.call = (fun _ _ -> assert false); globals = [||]; cycles = ref 0 } in
  let act = Exec.make_activation ~func ~args:[| arr; Value.Int 5 |] () in
  (match Exec.run cb code act ~at_osr:false with
  | Exec.Finished v -> Alcotest.(check bool) "sum" true (Value.same_value v (Value.Int 30))
  | Exec.Bailed b -> Alcotest.failf "unexpected bailout: %s" b.Exec.bo_reason)

let test_unroll_zero_trip_loop () =
  let src = "function f(n) { var t = 7; for (var i = 0; i < n; i++) t = 0; return t; }" in
  let program = Bytecode.Compile.program_of_source src in
  let func = program.Bytecode.Program.funcs.(1) in
  let f = Builder.build ~program ~func ~spec_args:[| Value.Int 0 |] () in
  let stats =
    apply program (Pipeline.make ~ps:true ~cp:true ~loop_unroll:true "u") f
  in
  Alcotest.(check int) "zero-trip loop removed" 1 stats.Pipeline.unrolled;
  let code, _ = Regalloc.run (Lower.run f) in
  let cb = { Exec.call = (fun _ _ -> assert false); globals = [||]; cycles = ref 0 } in
  let act = Exec.make_activation ~func ~args:[| Value.Int 0 |] () in
  match Exec.run cb code act ~at_osr:false with
  | Exec.Finished v -> Alcotest.(check bool) "initial value" true (Value.same_value v (Value.Int 7))
  | Exec.Bailed b -> Alcotest.failf "unexpected bailout: %s" b.Exec.bo_reason

let test_unroll_skips_unknown_bounds () =
  let src = "function f(n) { var t = 0; for (var i = 0; i < n; i++) t += i; return t; }" in
  let program = Bytecode.Compile.program_of_source src in
  let func = program.Bytecode.Program.funcs.(1) in
  let f = Builder.build ~program ~func ~arg_tags:Value.[| Some Tag_int |] () in
  let stats =
    apply program (Pipeline.make ~cp:true ~loop_unroll:true "u") f
  in
  Alcotest.(check int) "dynamic bound not unrolled" 0 stats.Pipeline.unrolled

let test_unroll_respects_budget () =
  let src = "function f(n) { var t = 0; for (var i = 0; i < n; i++) t += i; return t; }" in
  let program = Bytecode.Compile.program_of_source src in
  let func = program.Bytecode.Program.funcs.(1) in
  let f = Builder.build ~program ~func ~spec_args:[| Value.Int 5000 |] () in
  let stats =
    apply program (Pipeline.make ~ps:true ~cp:true ~loop_unroll:true "u") f
  in
  Alcotest.(check int) "trip count over budget" 0 stats.Pipeline.unrolled

(* --- inlining (§3.7) --- *)

let test_inline_closure_argument () =
  let program, f = build_map () in
  let stats = apply program (Pipeline.make ~ps:true ~cp:true "ps") f in
  Alcotest.(check int) "inc inlined" 1 stats.Pipeline.inlined;
  Alcotest.(check int) "no calls remain" 0
    (count f (function Mir.Call _ | Mir.Call_known _ -> true | _ -> false))

let test_inline_skips_closures_with_cells () =
  let src =
    {|
function mk() { var c = 0; return function(x) { c += x; return c; }; }
function drive(f) { var t = 0; for (var i = 0; i < 5; i++) t += f(i); return t; }
|}
  in
  let program = Bytecode.Compile.program_of_source src in
  (* fid 2 is the inner closure; it captures c so it must not be inlined;
     build drive specialized to it. *)
  let drive =
    Array.to_list program.Bytecode.Program.funcs
    |> List.find (fun (fn : Bytecode.Program.func) -> fn.Bytecode.Program.name = "drive")
  in
  let closure_fid =
    Array.to_list program.Bytecode.Program.funcs
    |> List.find_map (fun (fn : Bytecode.Program.func) ->
           if fn.Bytecode.Program.nupvals > 0 then Some fn.Bytecode.Program.fid else None)
    |> Option.get
  in
  let cell = ref (Value.Int 0) in
  let clo = Value.Closure { Value.fid = closure_fid; env = [| cell |]; cid = 1 } in
  let f = Builder.build ~program ~func:drive ~spec_args:[| clo |] () in
  let stats = apply program (Pipeline.make ~ps:true ~cp:true "ps") f in
  Alcotest.(check int) "capturing closure CAN inline (cells live behind refs)" 1
    stats.Pipeline.inlined;
  Alcotest.(check bool) "captured access through burned-in pointer" true
    (count f (function Mir.Load_captured _ | Mir.Store_captured _ -> true | _ -> false) > 0)

let test_inline_budget () =
  (* Self-recursive closure: the site budget must terminate inlining. *)
  let src = "function f(g, n) { return n <= 0 ? 0 : g(g, n - 1) + 1; }" in
  let program = Bytecode.Compile.program_of_source src in
  let func = program.Bytecode.Program.funcs.(1) in
  let clo = Value.Closure { Value.fid = 1; env = [||]; cid = Value.fresh_id () } in
  let f = Builder.build ~program ~func ~spec_args:[| clo; Value.Int 100 |] () in
  let stats = apply program (Pipeline.make ~ps:true ~cp:true "ps") f in
  Alcotest.(check bool) "bounded" true (stats.Pipeline.inlined <= 8)

(* --- GVN / LICM --- *)

let test_gvn_dedups_redundant_guards () =
  let src = "function f(s, i) { return s[i] + s[i]; }" in
  let program = Bytecode.Compile.program_of_source src in
  let func = program.Bytecode.Program.funcs.(1) in
  let tags = Value.[| Some Tag_array; Some Tag_int |] in
  let f = Builder.build ~program ~func ~arg_tags:tags () in
  Typer.run f;
  let before = count f (function Mir.Bounds_check _ -> true | _ -> false) in
  let eliminated = Gvn.run f in
  Verify.run f;
  let after = count f (function Mir.Bounds_check _ -> true | _ -> false) in
  Alcotest.(check int) "two checks before" 2 before;
  Alcotest.(check int) "one after" 1 after;
  Alcotest.(check bool) "gvn reported eliminations" true (eliminated > 0)

(* Regression: the constant value-numbering key must distinguish values of
   different types that share a display string — Int 4 and Str "4" once
   merged, burning an Int into a String phi after OSR specialization and
   crashing stringlength at runtime. *)
let test_gvn_constant_keys_are_type_aware () =
  let src = "function f(x) { var s = \"4\"; return s + (x & 7); }" in
  let program = Bytecode.Compile.program_of_source src in
  let func = program.Bytecode.Program.funcs.(1) in
  let f = Builder.build ~program ~func ~spec_args:Value.[| Int 4 |] () in
  Typer.run f;
  ignore (Gvn.run f);
  Verify.run f;
  let str_consts =
    count f (function Mir.Constant (Value.Str "4") -> true | _ -> false)
  and int_consts =
    count f (function Mir.Constant (Value.Int 4) -> true | _ -> false)
  in
  Alcotest.(check bool) "string constant survives" true (str_consts >= 1);
  Alcotest.(check bool) "int constant survives" true (int_consts >= 1)

let test_licm_hoists_invariants () =
  let src =
    "function f(a, b, n) { var t = 0; for (var i = 0; i < n; i++) t += (a * b) | 0; return t; }"
  in
  let program = Bytecode.Compile.program_of_source src in
  let func = program.Bytecode.Program.funcs.(1) in
  let tags = Value.[| Some Tag_int; Some Tag_int; Some Tag_int |] in
  let f = Builder.build ~program ~func ~arg_tags:tags () in
  Typer.run f;
  ignore (Gvn.run f);
  let hoisted = Licm.run f in
  Verify.run f;
  Alcotest.(check bool) "a*b hoisted" true (hoisted > 0)

(* --- generated-program differential property --- *)

let run_with config src =
  let buf = Buffer.create 64 in
  Builtins.with_print_hook
    (fun s -> Buffer.add_string buf s; Buffer.add_char buf '\n')
    (fun () ->
      ignore (Engine.run_source config src);
      Buffer.contents buf)

(* --- SCCP (the conditional-constant-propagation ablation) --- *)

(* The separating example: a phi fed by a branch that specialization
   decides. Aho's branch-insensitive meet sees both operands and gives up;
   SCCP marks the dead edge non-executable and folds through. *)
let sccp_example () =
  let src =
    "function f(n, m) { var x; if (n == 1) x = 5; else x = m; return (x * 3) | 0; }"
  in
  let program = Bytecode.Compile.program_of_source src in
  let func = program.Bytecode.Program.funcs.(1) in
  let build () =
    Builder.build ~program ~func ~spec_args:Value.[| Int 1; Int 0 |] ()
  in
  (program, build)

let const_count f v =
  count f (function
    | Mir.Constant c when Value.same_value c v -> true
    | _ -> false)

let test_sccp_folds_one_sided_phi () =
  let _, build = sccp_example () in
  (* Aho: the x*3 result is not folded (the phi meets 5 with m). *)
  let aho = build () in
  Typer.run aho;
  ignore (Gvn.run aho);
  ignore (Constprop.run aho);
  Alcotest.(check int) "aho leaves x*3 unfolded" 0 (const_count aho (Value.Int 15));
  (* SCCP: the else edge is unexecutable, x = 5, x*3 = 15. *)
  let sccp = build () in
  Typer.run sccp;
  ignore (Gvn.run sccp);
  let stats = Sccp.run sccp in
  Verify.run sccp;
  Alcotest.(check bool) "sccp folds x*3" true (const_count sccp (Value.Int 15) >= 1);
  Alcotest.(check bool) "sccp decided the branch" true (stats.Sccp.branches_decided >= 1)

let test_sccp_keeps_unknown_branches () =
  (* Without specialization the condition is Top: both sides executable,
     the phi must not fold, and no branch is decided. *)
  let src =
    "function f(n, m) { var x; if (n == 1) x = 5; else x = m; return (x * 3) | 0; }"
  in
  let program = Bytecode.Compile.program_of_source src in
  let func = program.Bytecode.Program.funcs.(1) in
  let f =
    Builder.build ~program ~func ~arg_tags:Value.[| Some Tag_int; Some Tag_int |] ()
  in
  Typer.run f;
  let stats = Sccp.run f in
  Verify.run f;
  Alcotest.(check int) "no branch decided" 0 stats.Sccp.branches_decided;
  Alcotest.(check int) "nothing folded to 15" 0 (const_count f (Value.Int 15))

let test_sccp_matches_constprop_on_straight_line () =
  (* On branch-free code the two algorithms agree exactly. *)
  let src = "function f(a) { return ((2 + 3) * a + (10 - 4)) | 0; }" in
  let program = Bytecode.Compile.program_of_source src in
  let func = program.Bytecode.Program.funcs.(1) in
  let with_pass pass =
    let f = Builder.build ~program ~func ~spec_args:Value.[| Int 7 |] () in
    Typer.run f;
    ignore (Gvn.run f);
    let n = pass f in
    Verify.run f;
    (n, const_count f (Value.Int 41))
  in
  let aho_folded, aho_result = with_pass Constprop.run in
  let sccp_folded, sccp_result = with_pass (fun f -> (Sccp.run f).Sccp.folded) in
  Alcotest.(check int) "same folds" aho_folded sccp_folded;
  Alcotest.(check int) "same final constant" aho_result sccp_result;
  Alcotest.(check bool) "the expression folded" true (aho_result >= 1)

let test_sccp_pipeline_end_to_end () =
  (* The sccp pipeline flag produces the same output and is at least as
     effective (never slower in model cycles on this shape). *)
  let src =
    "function pick(n, m) {\n\
    \  var x;\n\
    \  if (n == 1) x = 5; else x = m;\n\
    \  var t = 0;\n\
    \  for (var i = 0; i < 10; i++) t = (t + x * 3) | 0;\n\
    \  return t;\n\
     }\n\
     var r = 0;\n\
     for (var k = 0; k < 60; k++) r = (r + pick(1, k)) | 0;\n\
     print(r);"
  in
  let out opt =
    let buf = Buffer.create 16 in
    Builtins.with_print_hook
      (fun s -> Buffer.add_string buf s)
      (fun () ->
        let r = Engine.run_source (Engine.default_config ~opt ()) src in
        (Buffer.contents buf, r.Engine.total_cycles))
  in
  let aho_out, aho_cycles = out (Pipeline.make ~ps:true ~cp:true ~dce:true "aho") in
  let sccp_out, sccp_cycles = out (Pipeline.make ~ps:true ~sccp:true ~dce:true "sccp") in
  Alcotest.(check string) "same result" aho_out sccp_out;
  Alcotest.(check bool) "sccp at least as fast" true (sccp_cycles <= aho_cycles)

(* Golden test for the paper's Section 3 running example: replay the exact
   Figure 6 -> 7(a) -> 7(b) -> 7(c) -> 8(a) -> 8(b) -> 8(c) progression on
   [map]/[inc] and assert the structural claim of each figure. This is the
   narrative the whole paper hangs on, so it is pinned as one test. *)
let test_section3_figures_progression () =
  let source =
    {|
function inc(x) { return x + 1; }
function map(s, b, n, f) {
  var i = b;
  while (i < n) { s[i] = f(s[i]); i++; }
  return s;
}
print(map(new Array(1, 2, 3, 4, 5), 2, 5, inc));
|}
  in
  let program = Bytecode.Compile.program_of_source source in
  let find name =
    Array.to_list program.Bytecode.Program.funcs
    |> List.find (fun (f : Bytecode.Program.func) -> f.Bytecode.Program.name = name)
  in
  let map_fn = find "map" and inc_fn = find "inc" in
  let arr_v = Value.arr_of_list (List.init 5 (fun i -> Value.Int (i + 1))) in
  let inc_closure =
    Value.Closure
      { Value.fid = inc_fn.Bytecode.Program.fid; env = [||]; cid = Value.fresh_id () }
  in
  let spec_args = [| Value.Arr arr_v; Value.Int 2; Value.Int 5; inc_closure |] in
  (* Figure 6: the generic graph has parameters, a type-guarded element
     access with a bounds check, and an opaque call. *)
  let tags = Value.[| Some Tag_array; Some Tag_int; Some Tag_int; Some Tag_function |] in
  let generic = Builder.build ~program ~func:map_fn ~arg_tags:tags () in
  Typer.run generic;
  let n_params = count generic (function Mir.Parameter _ -> true | _ -> false) in
  Alcotest.(check bool) "fig6: parameters present" true (n_params >= 4);
  Alcotest.(check bool) "fig6: bounds checks present" true
    (count generic (function Mir.Bounds_check _ -> true | _ -> false) >= 1);
  Alcotest.(check bool) "fig6: opaque call present" true
    (count generic (function Mir.Call _ | Mir.Call_known _ -> true | _ -> false) >= 1);
  (* Figure 7(a): specialization replaces every parameter with a constant,
     in the entry block and the OSR block alike. *)
  let osr =
    { Builder.osr_pc = 2; osr_args = spec_args; osr_locals = [| Value.Int 2 |];
      osr_specialize = true; osr_bake_locals = true }
  in
  let f = Builder.build ~program ~func:map_fn ~spec_args ~osr () in
  Typer.run f;
  Alcotest.(check int) "fig7a: no parameters left" 0
    (count f (function Mir.Parameter _ | Mir.Osr_value _ -> true | _ -> false));
  Alcotest.(check bool) "fig7a: OSR entry exists" true (f.Mir.osr_entry <> None);
  (* Figure 7(b): constant propagation folds the induction bounds. *)
  let folded = Constprop.run f in
  Alcotest.(check bool) "fig7b: folds something" true (folded > 0);
  (* Figure 7(c): loop inversion makes the loop bottom-tested. *)
  ignore (Gvn.run f);
  Alcotest.(check int) "fig7c: one loop inverted" 1 (Loop_inversion.run f);
  (* Figure 8(a): DCE removes the wrapping conditional (2 < 5 is known). *)
  let dce = Dce.run f in
  Alcotest.(check bool) "fig8a: wrapping branch folded" true
    (dce.Dce.branches_folded >= 1);
  (* Figure 8(b): with the figure's alias assumption the bounds check on
     s[i] is proven by i = phi(2, i+1) < 5 against length 5. *)
  let bce = Bounds_check.run ~precise_alias:true f in
  Alcotest.(check bool) "fig8b: bounds check removed" true
    (bce.Bounds_check.bounds_removed >= 1);
  Alcotest.(check int) "fig8b: none remain" 0
    (count f (function Mir.Bounds_check _ -> true | _ -> false));
  (* Figure 8(c): the constant closure argument is inlined away. *)
  Alcotest.(check int) "fig8c: one site inlined" 1 (Inline.run ~program f);
  Typer.run f;
  ignore (Gvn.run f);
  ignore (Constprop.run f);
  ignore (Dce.run f);
  Verify.run f;
  Alcotest.(check int) "fig8c: no calls left" 0
    (count f (function Mir.Call _ | Mir.Call_known _ -> true | _ -> false));
  (* And the specialized native code computes the paper's answer: elements
     2..4 incremented in place. *)
  let code, _ = Regalloc.run (Lower.run f) in
  let cb =
    { Exec.call = (fun _ _ -> Alcotest.fail "unexpected call in inlined code");
      globals = [||]; cycles = ref 0 }
  in
  let act = Exec.make_activation ~func:map_fn ~args:spec_args () in
  (match Exec.run cb code act ~at_osr:false with
  | Exec.Finished (Value.Arr a) ->
    Alcotest.(check (list int)) "array mutated in place" [ 1; 2; 4; 5; 6 ]
      (List.init a.Value.length (fun i ->
           match Value.arr_get a i with Value.Int n -> n | _ -> -1))
  | Exec.Finished v ->
    Alcotest.failf "expected the array back, got %s" (Value.to_display_string v)
  | Exec.Bailed b -> Alcotest.failf "unexpected bailout: %s" b.Exec.bo_reason)

(* The full engine-level reproducer the differential property found: a
   specialized OSR entry bakes local [s] as the string "4"; with the buggy
   display-string constant key, GVN substituted the Int32 argument constant
   for it and stringlength crashed at runtime. *)
let test_gvn_collision_engine_regression () =
  let src =
    {|function fn2(x, y) {
        var s = "";
        for (var i = 0; i < 10; i++) s += (((x ^ 0) | (4 ^ x))) & 7;
        var t = 0;
        for (var i = 0; i < s.length; i++) t = (t * 31 + s.charCodeAt(i)) | 0;
        return (t + ((1 + 2) ^ (y & y))) | 0;
      }
      var r = 0;
      for (var k = 0; k < 25; k++) r = (r + fn2(20, 4)) | 0;
      print(r);|}
  in
  let reference = run_with Engine.interp_only src in
  List.iter
    (fun opt ->
      Alcotest.(check string)
        ("agrees: " ^ opt.Pipeline.name)
        reference
        (run_with (Engine.default_config ~opt ()) src))
    [ Pipeline.make ~ps:true "PS"; Pipeline.best ]

(* The program generators and the config matrix live in [lib/fuzz] (shared
   with bin/fuzz.exe); the properties here are thin QCheck wrappers. A
   [Fuzz_gen] generator is a plain [Random.State.t -> string] function,
   which is exactly a [QCheck.Gen.t]. *)
let differential_prop name ~count gen =
  QCheck.Test.make ~name ~count
    (QCheck.make ~print:Fun.id gen)
    (fun src -> Fuzz_diff.check src = None)

let prop_configs_agree =
  differential_prop "interpreter and every JIT configuration agree" ~count:60
    Fuzz_gen.program

let prop_loop_shapes_agree =
  differential_prop "loop transformations preserve irregular loop shapes" ~count:80
    Fuzz_gen.loop_program

let prop_object_traffic_agrees =
  differential_prop "object-model traffic agrees across configurations" ~count:40
    Fuzz_gen.object_program

let prop_deopt_traffic_agrees =
  differential_prop "bailout/recompile stress agrees across configurations" ~count:40
    Fuzz_gen.deopt_program

let suites =
  [
    ( "opt.constprop",
      [
        Alcotest.test_case "folds type guards" `Quick test_constprop_folds_guards;
        Alcotest.test_case "folds comparisons and typeof" `Quick
          test_constprop_folds_comparison;
        Alcotest.test_case "folds pure natives" `Quick test_constprop_folds_pure_natives;
        Alcotest.test_case "meet over phis" `Quick test_constprop_lattice_laws;
      ] );
    ( "opt.dce",
      [
        Alcotest.test_case "removes wrapping conditional" `Quick
          test_dce_removes_wrapping_conditional;
        Alcotest.test_case "keeps the entry block" `Quick test_dce_keeps_entry_block;
        Alcotest.test_case "keeps snapshot values" `Quick test_dce_respects_snapshots;
      ] );
    ( "opt.loop_inversion",
      [
        Alcotest.test_case "bottom-tested latch" `Quick test_inversion_moves_test_to_latch;
        Alcotest.test_case "zero-trip semantics" `Quick test_inversion_preserves_zero_trip;
      ] );
    ( "opt.bounds_check",
      [
        Alcotest.test_case "removes proven checks" `Quick test_bce_removes_proven_checks;
        Alcotest.test_case "keeps unprovable checks" `Quick test_bce_keeps_unprovable_checks;
        Alcotest.test_case "store conservatism + ablation" `Quick
          test_bce_store_conservatism;
        Alcotest.test_case "overflow-check elimination (§6)" `Quick
          test_overflow_check_elimination;
      ] );
    ( "opt.unroll",
      [
        Alcotest.test_case "unrolls constant-trip loop" `Quick
          test_unroll_constant_trip_loop;
        Alcotest.test_case "removes zero-trip loop" `Quick test_unroll_zero_trip_loop;
        Alcotest.test_case "skips dynamic bounds" `Quick test_unroll_skips_unknown_bounds;
        Alcotest.test_case "respects size budget" `Quick test_unroll_respects_budget;
      ] );
    ( "opt.inline",
      [
        Alcotest.test_case "inlines closure arguments" `Quick test_inline_closure_argument;
        Alcotest.test_case "burned-in captured cells" `Quick
          test_inline_skips_closures_with_cells;
        Alcotest.test_case "site budget bounds recursion" `Quick test_inline_budget;
      ] );
    ( "opt.baseline",
      [
        Alcotest.test_case "gvn dedups guards" `Quick test_gvn_dedups_redundant_guards;
        Alcotest.test_case "gvn constant keys are type-aware" `Quick
          test_gvn_constant_keys_are_type_aware;
        Alcotest.test_case "gvn collision regression (engine)" `Quick
          test_gvn_collision_engine_regression;
        Alcotest.test_case "licm hoists invariants" `Quick test_licm_hoists_invariants;
      ] );
    ( "opt.sccp",
      [
        Alcotest.test_case "folds one-sided phi" `Quick test_sccp_folds_one_sided_phi;
        Alcotest.test_case "keeps unknown branches" `Quick
          test_sccp_keeps_unknown_branches;
        Alcotest.test_case "matches constprop on straight line" `Quick
          test_sccp_matches_constprop_on_straight_line;
        Alcotest.test_case "pipeline end to end" `Quick test_sccp_pipeline_end_to_end;
      ] );
    ( "opt.section3",
      [
        Alcotest.test_case "figures 6-8 progression on map/inc" `Quick
          test_section3_figures_progression;
      ] );
    ( "opt.differential",
      [
        QCheck_alcotest.to_alcotest ~long:false prop_configs_agree;
        QCheck_alcotest.to_alcotest ~long:false prop_loop_shapes_agree;
        QCheck_alcotest.to_alcotest ~long:false prop_object_traffic_agrees;
        QCheck_alcotest.to_alcotest ~long:false prop_deopt_traffic_agrees;
      ] );
  ]
