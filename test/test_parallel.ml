(* The domain pool: unit tests of the fork-join contract (ordering,
   first-failure-by-index propagation, nested submission, utilization
   stats) and end-to-end determinism of the ported drivers — the same
   bytes at --jobs 4 as at --jobs 1. *)

let with_pool jobs f =
  let pool = Pool.create ~jobs in
  Fun.protect ~finally:(fun () -> Pool.shutdown pool) (fun () -> f pool)

(* --- unit tests ------------------------------------------------------ *)

let test_map_ordering () =
  with_pool 4 (fun pool ->
      let xs = List.init 100 (fun i -> i) in
      Alcotest.(check (list int))
        "map ≡ List.map" (List.map (fun x -> x * x) xs)
        (Pool.map pool (fun x -> x * x) xs);
      Alcotest.(check (list int)) "empty" [] (Pool.map pool (fun x -> x) []);
      Alcotest.(check (list int)) "singleton" [ 9 ] (Pool.map pool (fun x -> x * x) [ 3 ]);
      Alcotest.(check (list string))
        "mapi carries indices"
        (List.mapi (fun i s -> Printf.sprintf "%d:%s" i s) [ "a"; "b"; "c" ])
        (Pool.mapi pool (fun i s -> Printf.sprintf "%d:%s" i s) [ "a"; "b"; "c" ]))

let test_serial_pool () =
  (* A 1-job pool is the serial escape hatch: same results, no workers. *)
  with_pool 1 (fun pool ->
      Alcotest.(check int) "jobs clamped" 1 (Pool.jobs pool);
      Alcotest.(check (list int))
        "inline map" [ 2; 4; 6 ]
        (Pool.map pool (fun x -> 2 * x) [ 1; 2; 3 ]))

let test_first_failure_by_index () =
  with_pool 4 (fun pool ->
      let ran = Atomic.make 0 in
      let f i =
        Atomic.incr ran;
        if i mod 7 = 3 then failwith (string_of_int i) else i
      in
      (match Pool.map pool f (List.init 50 (fun i -> i)) with
      | _ -> Alcotest.fail "expected a failure"
      | exception Failure msg ->
        (* Failures exist at 3, 10, 17, ...; the serial run would hit 3
           first, so that is the one the merge must re-raise. *)
        Alcotest.(check string) "smallest-index failure wins" "3" msg);
      (* The batch drains fully even when tasks fail. *)
      Alcotest.(check int) "every task still ran" 50 (Atomic.get ran))

let test_nested_submit () =
  (* A task that itself maps on the same pool: joining participants help
     drain the queue, so this terminates (and is exact). *)
  with_pool 4 (fun pool ->
      let sums =
        Pool.map pool
          (fun base -> List.fold_left ( + ) 0 (Pool.map pool (fun i -> (base * 10) + i) [ 1; 2; 3 ]))
          [ 1; 2; 3; 4; 5; 6; 7; 8 ]
      in
      Alcotest.(check (list int))
        "nested fan-out is exact"
        (List.map (fun base -> (3 * base * 10) + 6) [ 1; 2; 3; 4; 5; 6; 7; 8 ])
        sums)

let test_stats () =
  with_pool 4 (fun pool ->
      let n = 64 in
      ignore (Pool.map pool (fun i -> i * i) (List.init n (fun i -> i)));
      let s = Pool.stats pool in
      Alcotest.(check int) "jobs" 4 s.Pool.st_jobs;
      Alcotest.(check int) "participant slots" 4 (Array.length s.Pool.st_tasks);
      Alcotest.(check int)
        "every task accounted"
        n
        (Array.fold_left ( + ) 0 s.Pool.st_tasks);
      Alcotest.(check bool) "joins counted" true (s.Pool.st_joins >= 1);
      Alcotest.(check bool) "steals within bounds" true (s.Pool.st_steals <= n))

(* --- determinism of the ported drivers ------------------------------- *)

(* Capture everything a driver prints (they print straight to stdout). *)
let capture_stdout f =
  let tmp = Filename.temp_file "vs_parallel" ".out" in
  let fd = Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_TRUNC ] 0o600 in
  let saved = Unix.dup Unix.stdout in
  flush stdout;
  Unix.dup2 fd Unix.stdout;
  Fun.protect
    ~finally:(fun () ->
      flush stdout;
      Unix.dup2 saved Unix.stdout;
      Unix.close saved;
      Unix.close fd)
    (fun () -> ignore (f ()));
  let out = In_channel.with_open_bin tmp In_channel.input_all in
  Sys.remove tmp;
  out

let at_jobs jobs f =
  Pool.set_default_jobs jobs;
  Fun.protect ~finally:(fun () -> Pool.set_default_jobs 1) f

let check_driver_deterministic name f =
  let serial = at_jobs 1 (fun () -> capture_stdout f) in
  let parallel = at_jobs 4 (fun () -> capture_stdout f) in
  Alcotest.(check bool) "serial output nonempty" true (String.length serial > 0);
  Alcotest.(check string) (name ^ ": jobs 4 ≡ jobs 1") serial parallel

let test_fig_policy_deterministic () =
  check_driver_deterministic "fig_policy" (fun () -> Fig_policy.print (Fig_policy.run ()))

let test_fig_suite_calls_deterministic () =
  check_driver_deterministic "fig_suite_calls" (fun () ->
      Fig_suite_calls.print (Fig_suite_calls.run ()))

let fuzz_verdict = function
  | None -> "pass"
  | Some (Fuzz_diff.Mismatch m) -> "mismatch:" ^ m.Fuzz_diff.mm_config
  | Some (Fuzz_diff.Verifier_diag { vd_config; _ }) -> "diag:" ^ vd_config

let fixed_seed_sources n =
  List.init n (fun seed -> (seed, Fuzz_gen.any_program (Random.State.make [| seed |])))

let test_fuzz_deterministic () =
  let cases = fixed_seed_sources 12 in
  let verdicts jobs =
    at_jobs jobs (fun () ->
        List.map (fun (_, src) -> fuzz_verdict (Fuzz_diff.check src)) cases)
  in
  Alcotest.(check (list string)) "fuzz verdicts: jobs 4 ≡ jobs 1" (verdicts 1) (verdicts 4)

let test_chaos_deterministic () =
  let cases = fixed_seed_sources 6 in
  let verdicts jobs =
    at_jobs jobs (fun () ->
        List.map (fun (seed, src) -> fuzz_verdict (Fuzz_diff.check_chaos ~seed src)) cases)
  in
  Alcotest.(check (list string)) "chaos verdicts: jobs 4 ≡ jobs 1" (verdicts 1) (verdicts 4)

let suites =
  [
    ( "parallel.pool",
      [
        Alcotest.test_case "map preserves order" `Quick test_map_ordering;
        Alcotest.test_case "1-job pool runs inline" `Quick test_serial_pool;
        Alcotest.test_case "smallest-index failure re-raised" `Quick
          test_first_failure_by_index;
        Alcotest.test_case "nested submission drains" `Quick test_nested_submit;
        Alcotest.test_case "utilization stats" `Quick test_stats;
      ] );
    ( "parallel.determinism",
      [
        Alcotest.test_case "fig_policy bytes" `Slow test_fig_policy_deterministic;
        Alcotest.test_case "fig_suite_calls bytes" `Slow test_fig_suite_calls_deterministic;
        Alcotest.test_case "fuzz verdicts" `Slow test_fuzz_deterministic;
        Alcotest.test_case "chaos verdicts" `Slow test_chaos_deterministic;
      ] );
  ]
