(* Policy-layer tests: the pure decision functions of [Policy] (probe
   matching, the widening ladder, hot-call keying, tier-2 promotion, miss
   actions, the tiered pass schedules), engine-level schedules under the
   polyvariant policy (anticipated seeding, version widening, cache fill,
   best-rank probing, promotion), interprocedural fact propagation through
   a two-deep call chain, a 60-seed differential pinning paper and
   polyvariant outputs to the interpreter's, and jobs-4-vs-1 determinism
   of the polyvariant verdicts and the version-count driver. *)

open Runtime

let run ?(cfg = Engine.default_config ~opt:Pipeline.all_on ()) ?(sinks = []) src =
  let buf = Buffer.create 64 in
  Builtins.with_print_hook
    (fun s -> Buffer.add_string buf s; Buffer.add_char buf '\n')
    (fun () ->
      let engine = Engine.make cfg (Bytecode.Compile.program_of_source src) in
      List.iter (Telemetry.attach (Engine.telemetry engine)) sinks;
      let report = Engine.run engine in
      (engine, report, Buffer.contents buf))

let fn report name =
  List.find (fun (f : Engine.func_report) -> f.Engine.fr_name = name) report.Engine.functions

let counter engine report name key =
  Telemetry.Counters.get
    (Telemetry.counters (Engine.telemetry engine))
    ~fid:(fn report name).Engine.fr_fid key

let events_of ring name =
  List.filter (fun e -> Telemetry.event_fname e = name) (Telemetry.Ring.contents ring)

let poly_cfg ?(cache_size = 2) ?(opt = Pipeline.all_on) () =
  Engine.default_config ~opt ~policy:Policy.Polyvariant ~cache_size ()

(* A policy view with every field overridable; the defaults describe a
   hot, unblacklisted function with an empty cache. *)
let view ?(cache_size = 2) ?(selective = false) ?(want = true) ?(calls = 30)
    ?(changes = 1) ?(keys = []) ?(anticipated = []) () =
  {
    Policy.pv_cache_size = cache_size;
    pv_selective = selective;
    pv_want_specialize = want;
    pv_calls = calls;
    pv_arg_set_changes = changes;
    pv_keys = keys;
    pv_anticipated = anticipated;
  }

let ints xs = Array.of_list (List.map (fun i -> Value.Int i) xs)

(* ------------------------------------------------------------------ *)
(* The pure decision functions                                         *)
(* ------------------------------------------------------------------ *)

let test_matches () =
  let v52 = Policy.Key_values (ints [ 5; 2 ], None) in
  Alcotest.(check bool) "values: exact tuple" true (Policy.matches v52 (ints [ 5; 2 ]));
  Alcotest.(check bool) "values: wrong value" false (Policy.matches v52 (ints [ 5; 3 ]));
  Alcotest.(check bool) "values: wrong arity" false (Policy.matches v52 (ints [ 5 ]));
  let masked = Policy.Key_values (ints [ 5; 2 ], Some [| true; false |]) in
  Alcotest.(check bool) "mask: unburned position free" true
    (Policy.matches masked (ints [ 5; 99 ]));
  Alcotest.(check bool) "mask: burned position compared" false
    (Policy.matches masked (ints [ 6; 2 ]));
  let tags = Policy.Key_tags [| Value.Tag_int; Value.Tag_string |] in
  Alcotest.(check bool) "tags: same tags, any values" true
    (Policy.matches tags [| Value.Int 9; Value.Str "x" |]);
  Alcotest.(check bool) "tags: tag mismatch" false
    (Policy.matches tags [| Value.Str "x"; Value.Str "x" |]);
  Alcotest.(check bool) "generic: anything" true
    (Policy.matches Policy.Key_generic [| Value.Undefined |])

let test_widen_ladder () =
  (* One step per rung, keyed to serve the arguments that missed; nothing
     is wider than generic. Never compare keys structurally (values can be
     cyclic) — pattern-match the shape. *)
  (match Policy.widen (Policy.Key_values (ints [ 5 ], None)) (ints [ 9 ]) with
  | Some (Policy.Key_tags [| Value.Tag_int |]) -> ()
  | _ -> Alcotest.fail "values must widen to the missing args' tags");
  (match Policy.widen (Policy.Key_tags [| Value.Tag_int |]) [| Value.Str "s" |] with
  | Some Policy.Key_generic -> ()
  | _ -> Alcotest.fail "tags must widen to generic");
  (match Policy.widen Policy.Key_generic (ints [ 1 ]) with
  | None -> ()
  | Some _ -> Alcotest.fail "generic must not widen");
  Alcotest.(check int) "rank: values" 0 (Policy.key_rank (Policy.Key_values (ints [ 5 ], None)));
  Alcotest.(check int) "rank: tags" 1 (Policy.key_rank (Policy.Key_tags [| Value.Tag_int |]));
  Alcotest.(check int) "rank: generic" 2 (Policy.key_rank Policy.Key_generic);
  Alcotest.(check string) "display: values" "(5)"
    (Policy.key_to_string (Policy.Key_values (ints [ 5 ], None)));
  Alcotest.(check string) "display: tags" "[Int32]"
    (Policy.key_to_string (Policy.Key_tags [| Value.Tag_int |]));
  Alcotest.(check string) "display: generic" "generic"
    (Policy.key_to_string Policy.Key_generic)

let choice = function
  | Policy.Spec_values -> "values"
  | Policy.Spec_selective -> "selective"
  | Policy.Spec_tags -> "tags"
  | Policy.Spec_generic -> "generic"

let test_choose_hot () =
  let args = ints [ 5 ] in
  Alcotest.(check string) "paper: specialize immediately" "values"
    (choice (Policy.choose_hot Policy.Paper (view ()) ~args));
  Alcotest.(check string) "poly: tier-1 is generic" "generic"
    (choice (Policy.choose_hot Policy.Polyvariant (view ()) ~args));
  Alcotest.(check string) "poly: anticipated signature skips the generic tier" "values"
    (choice (Policy.choose_hot Policy.Polyvariant (view ~anticipated:[ ints [ 5 ] ] ()) ~args));
  Alcotest.(check string) "poly: anticipated but different tuple" "generic"
    (choice (Policy.choose_hot Policy.Polyvariant (view ~anticipated:[ ints [ 6 ] ] ()) ~args));
  Alcotest.(check string) "selective wins in either policy" "selective"
    (choice (Policy.choose_hot Policy.Polyvariant (view ~selective:true ()) ~args));
  Alcotest.(check string) "blacklisted: generic" "generic"
    (choice (Policy.choose_hot Policy.Paper (view ~want:false ()) ~args))

let test_compile_opt () =
  let opt_name cfg = cfg.Pipeline.name in
  Alcotest.(check string) "paper: configured pipeline always" Pipeline.all_on.Pipeline.name
    (opt_name (Policy.compile_opt Policy.Paper Pipeline.all_on ~specialized:false ~size:10));
  Alcotest.(check string) "poly: generic tier compiles quick"
    Pipeline.baseline.Pipeline.name
    (opt_name (Policy.compile_opt Policy.Polyvariant Pipeline.all_on ~specialized:false ~size:10));
  Alcotest.(check string) "poly: specialized small body gets the full pipeline"
    Pipeline.all_on.Pipeline.name
    (opt_name
       (Policy.compile_opt Policy.Polyvariant Pipeline.all_on ~specialized:true
          ~size:Policy.opt_size_cap));
  Alcotest.(check string) "poly: too big to optimize" Pipeline.baseline.Pipeline.name
    (opt_name
       (Policy.compile_opt Policy.Polyvariant Pipeline.all_on ~specialized:true
          ~size:(Policy.opt_size_cap + 1)))

let test_promote () =
  let args = ints [ 5 ] in
  let hot_calls = 10 in
  let promoted v = Policy.promote Policy.Polyvariant v ~args ~hot_calls in
  Alcotest.(check (option string)) "paper never promotes" None
    (Option.map choice (Policy.promote Policy.Paper (view ~keys:[ Policy.Key_generic ] ()) ~args ~hot_calls));
  let generic_one = [ Policy.Key_generic ] in
  Alcotest.(check (option string)) "needs promote_factor × hot_calls calls" None
    (Option.map choice
       (promoted (view ~keys:generic_one ~calls:((Policy.promote_factor * hot_calls) - 1) ())));
  Alcotest.(check (option string)) "needs a free slot" None
    (Option.map choice (promoted (view ~cache_size:1 ~keys:generic_one ())));
  Alcotest.(check (option string)) "stable tuples promote to a value version"
    (Some "values")
    (Option.map choice (promoted (view ~keys:generic_one ~changes:2 ())));
  Alcotest.(check (option string)) "always-varying tuples promote to tags"
    (Some "tags")
    (Option.map choice (promoted (view ~keys:generic_one ~changes:20 ())));
  Alcotest.(check (option string)) "anticipated signature beats the variability heuristic"
    (Some "values")
    (Option.map choice
       (promoted (view ~keys:generic_one ~changes:20 ~anticipated:[ ints [ 5 ] ] ())));
  Alcotest.(check (option string)) "blacklisted functions stay generic" None
    (Option.map choice (promoted (view ~want:false ~keys:generic_one ())))

let miss = function
  | Policy.Miss_respecialize -> "respecialize"
  | Policy.Miss_fill c -> "fill:" ^ choice c
  | Policy.Miss_widen i -> "widen:" ^ string_of_int i
  | Policy.Miss_deopt_generic -> "deopt"

let test_on_miss_paper () =
  let args = ints [ 9 ] in
  let v5 = Policy.Key_values (ints [ 5 ], None) in
  Alcotest.(check string) "§6 fill while there is room" "fill:values"
    (miss (Policy.on_miss Policy.Paper (view ~cache_size:2 ~keys:[ v5 ] ()) ~args));
  Alcotest.(check string) "§4 deopt on a full cache" "deopt"
    (miss (Policy.on_miss Policy.Paper (view ~cache_size:1 ~keys:[ v5 ] ()) ~args));
  Alcotest.(check string) "selective narrows instead" "respecialize"
    (miss (Policy.on_miss Policy.Paper (view ~selective:true ~keys:[ v5 ] ()) ~args));
  Alcotest.(check string) "blacklisted: plain deopt" "deopt"
    (miss (Policy.on_miss Policy.Paper (view ~want:false ~keys:[ v5 ] ()) ~args))

let test_on_miss_polyvariant () =
  let v5 = Policy.Key_values (ints [ 5 ], None) in
  let vstr = Policy.Key_values ([| Value.Str "a" |], None) in
  let tags = Policy.Key_tags [| Value.Tag_int |] in
  let on keys args = miss (Policy.on_miss Policy.Polyvariant (view ~keys ()) ~args) in
  (* Second mismatching tuple for a value signature: widen that version
     (by MRU index), even when the cache still has room. *)
  Alcotest.(check string) "same-tag value version widens" "widen:1"
    (on [ vstr; v5 ] (ints [ 9 ]));
  (* No same-tag value version and room: fill. The novel shape has no
     anticipated signature, so the fill is a tier-1 generic catch-all. *)
  Alcotest.(check string) "novel shape fills (tier-1 generic)" "fill:generic"
    (on [ v5 ] [| Value.Str "x" |]);
  Alcotest.(check string) "anticipated novel shape fills a value version" "fill:values"
    (miss
       (Policy.on_miss Policy.Polyvariant
          (view ~keys:[ v5 ] ~anticipated:[ [| Value.Str "x" |] ] ())
          ~args:[| Value.Str "x" |]));
  (* Full cache, nothing to widen in place: repurpose the LRU slot one
     rank wider. Tag versions never widen in place on a same-tag miss —
     a same-tag call would have hit them. *)
  Alcotest.(check string) "full cache repurposes the LRU slot" "widen:1"
    (miss
       (Policy.on_miss Policy.Polyvariant
          (view ~cache_size:2 ~keys:[ tags; vstr ] ())
          ~args:[| Value.Arr (Value.new_arr 0) |]));
  Alcotest.(check string) "blacklisted: §4 deopt" "deopt"
    (miss (Policy.on_miss Policy.Polyvariant (view ~want:false ~keys:[ v5 ] ()) ~args:(ints [ 9 ])))

(* ------------------------------------------------------------------ *)
(* Engine-level schedules                                              *)
(* ------------------------------------------------------------------ *)

(* The caller compiles at its 10th call — recording f's constant argument
   signature — and then immediately calls f for f's 10th time, so f's
   hot-call compile sees the anticipated signature and value-specializes
   without ever owning a generic catch-all. That is the configuration in
   which the miss path (and hence the widening ladder) is observable. *)

let test_widening_ladder_schedule () =
  let ring = Telemetry.Ring.create 4096 in
  let cfg = poly_cfg ~cache_size:1 () in
  let src =
    "function f(x) { return x + 1; }\n\
     function c() { return f(5); }\n\
     var t = 0;\n\
     for (var i = 0; i < 25; i++) t += c();\n\
     t = f(9);\n\
     t = f(1.5);\n\
     print(t);"
  in
  let engine, report, out = run ~cfg ~sinks:[ Telemetry.Ring.sink ring ] src in
  Alcotest.(check string) "result" "2.5\n" out;
  let get = counter engine report "f" in
  (* Caller-seeded value version, then the full ladder: f(9) has the same
     tag as the burned-in (5) → widen to [Int32]; f(1.5) misses the tag
     version with the cache full → the LRU (only) slot widens to generic. *)
  Alcotest.(check int) "caller published one fact" 1 (get Telemetry.Key.interpro_facts);
  Alcotest.(check int) "hot compile was seeded by it" 1 (get Telemetry.Key.interpro_seeded);
  Alcotest.(check int) "two ladder steps" 2 (get Telemetry.Key.versions_widened);
  Alcotest.(check int) "compiles: values, tags, generic" 3 (get Telemetry.Key.compiles);
  Alcotest.(check int) "widening is not §4 deoptimization" 0 (get Telemetry.Key.deopts);
  Alcotest.(check int) "no blacklist" 0 (get Telemetry.Key.blacklists);
  Alcotest.(check bool) "not reported deoptimized" false (fn report "f").Engine.fr_deoptimized;
  let widens =
    List.filter_map
      (function
        | Telemetry.Version_widen { from_key; to_key; _ } -> Some (from_key, to_key)
        | _ -> None)
      (events_of ring "f")
  in
  Alcotest.(check (list (pair string string)))
    "ladder transitions"
    [ ("(5)", "[Int32]"); ("[Int32]", "generic") ]
    widens

let test_fill_and_best_rank_probe () =
  let ring = Telemetry.Ring.create 4096 in
  let cfg = poly_cfg ~cache_size:2 () in
  let src =
    "function f(x) { return x; }\n\
     function c() { return f(5); }\n\
     var t = 0;\n\
     for (var i = 0; i < 12; i++) t += c();\n\
     t = f(\"a\");\n\
     t = f(\"a\");\n\
     print(f(5));"
  in
  let engine, report, out = run ~cfg ~sinks:[ Telemetry.Ring.sink ring ] src in
  Alcotest.(check string) "result" "5\n" out;
  let get = counter engine report "f" in
  (* The string call misses the value version; a novel tag with room
     fills a generic catch-all alongside it instead of widening. *)
  Alcotest.(check int) "one miss" 1 (get Telemetry.Key.cache_misses);
  Alcotest.(check int) "no widening" 0 (get Telemetry.Key.versions_widened);
  Alcotest.(check int) "compiles: values + generic fill" 2 (get Telemetry.Key.compiles);
  (* The final f(5): the generic catch-all is at the front of the MRU list
     (the second string call hit it), but the probe must prefer the more
     specific value version behind it. *)
  (match List.rev (events_of ring "f") with
  | Telemetry.Cache_hit { index; entries; _ } :: _ ->
    Alcotest.(check int) "entries at the last probe" 2 entries;
    Alcotest.(check int) "most specific version wins, not the MRU generic" 1 index
  | _ -> Alcotest.fail "expected the last f event to be a cache hit")

let test_promotion_fills_value_versions () =
  let cfg = poly_cfg ~cache_size:3 () in
  let src =
    "function f(x) { return x; }\n\
     function c() { return f(5) + f(\"a\"); }\n\
     var t = 0;\n\
     for (var i = 0; i < 20; i++) t = c();\n\
     print(t);"
  in
  let engine, report, out = run ~cfg src in
  Alcotest.(check string) "result" "5a\n" out;
  let get = counter engine report "f" in
  (* f goes hot (call 10, iteration 5) before its caller compiles, so
     tier-1 is a generic catch-all. The caller's compile at iteration 10
     publishes both constant signatures; once f crosses promote_factor ×
     hot_calls calls, each generic hit whose tuple matches an anticipated
     signature promotes a value version into a free slot — one per
     signature, and the best-rank probe then routes both tuples to their
     specialized versions so promotion stops by itself. *)
  Alcotest.(check int) "caller published both signatures" 2 (get Telemetry.Key.interpro_facts);
  Alcotest.(check int) "two promotions" 2 (get Telemetry.Key.versions_promoted);
  Alcotest.(check int) "both promotions were seeded" 2 (get Telemetry.Key.interpro_seeded);
  Alcotest.(check int) "compiles: generic + two value versions" 3 (get Telemetry.Key.compiles);
  Alcotest.(check int) "no misses (the catch-all absorbed the novelty)" 0
    (get Telemetry.Key.cache_misses);
  Alcotest.(check int) "no widening" 0 (get Telemetry.Key.versions_widened);
  Alcotest.(check int) "no deopt" 0 (get Telemetry.Key.deopts)

let test_interprocedural_two_deep_chain () =
  let cfg = poly_cfg ~cache_size:2 () in
  let src =
    "function h(a, b) { return a + b; }\n\
     function g(x) { return h(x, 9); }\n\
     function f() { return g(5); }\n\
     var t = 0;\n\
     for (var i = 0; i < 25; i++) t += f();\n\
     print(t);"
  in
  let engine, report, out = run ~cfg src in
  Alcotest.(check string) "result" (string_of_int (25 * 14) ^ "\n") out;
  (* The chain resolves in one iteration: f's tier-1 compile records the
     constant signature g(5); g's hot-call compile is therefore seeded
     with (5), and with x burned in its own call site h(x, 9) becomes the
     constant signature (5, 9); h's hot-call compile is seeded in turn.
     Facts crossed two call-graph edges without any call-history support. *)
  let get name = counter engine report name in
  Alcotest.(check int) "g received f's fact" 1 (get "g" Telemetry.Key.interpro_facts);
  Alcotest.(check int) "g's compile was seeded" 1 (get "g" Telemetry.Key.interpro_seeded);
  Alcotest.(check int) "h received g's fact" 1 (get "h" Telemetry.Key.interpro_facts);
  Alcotest.(check int) "h's compile was seeded" 1 (get "h" Telemetry.Key.interpro_seeded);
  Alcotest.(check bool) "g value-specialized" true (fn report "g").Engine.fr_was_specialized;
  Alcotest.(check bool) "h value-specialized" true (fn report "h").Engine.fr_was_specialized;
  Alcotest.(check bool) "f stayed on the generic tier" false
    (fn report "f").Engine.fr_was_specialized;
  Alcotest.(check int) "one compile each" 1 (get "g" Telemetry.Key.compiles);
  Alcotest.(check int) "one compile each (h)" 1 (get "h" Telemetry.Key.compiles);
  Alcotest.(check int) "no deopts anywhere" 0
    (List.fold_left (fun acc (f : Engine.func_report) ->
         acc + get f.Engine.fr_name Telemetry.Key.deopts)
       0 report.Engine.functions)

(* ------------------------------------------------------------------ *)
(* Differential and determinism                                        *)
(* ------------------------------------------------------------------ *)

let policy_configs =
  [
    ("paper@1", Engine.default_config ~opt:Pipeline.all_on ());
    ("poly@1", poly_cfg ~cache_size:1 ());
    ("poly@2", poly_cfg ~cache_size:2 ());
    ("poly@4", poly_cfg ~cache_size:4 ());
  ]

let fixed_seed_sources n =
  List.init n (fun seed -> (seed, Fuzz_gen.any_program (Random.State.make [| seed |])))

let test_sixty_seed_differential () =
  (* Paper at cache size 1 (the seed engine's configuration) and the
     polyvariant policy at sizes 1/2/4 must all print exactly the
     interpreter's output on 60 generated programs, with per-pass pipeline
     checks on. *)
  List.iter
    (fun (seed, src) ->
      match Fuzz_diff.check ~configs:policy_configs src with
      | None -> ()
      | Some (Fuzz_diff.Mismatch m) ->
        Alcotest.failf "seed %d: %s diverged from the interpreter" seed m.Fuzz_diff.mm_config
      | Some (Fuzz_diff.Verifier_diag { vd_config; vd_diag }) ->
        Alcotest.failf "seed %d: %s rejected by the verifier: %s" seed vd_config
          (Diag.to_string vd_diag))
    (fixed_seed_sources 60)

let capture_stdout f =
  let tmp = Filename.temp_file "vs_policy" ".out" in
  let fd = Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_TRUNC ] 0o600 in
  let saved = Unix.dup Unix.stdout in
  flush stdout;
  Unix.dup2 fd Unix.stdout;
  Fun.protect
    ~finally:(fun () ->
      flush stdout;
      Unix.dup2 saved Unix.stdout;
      Unix.close saved;
      Unix.close fd)
    (fun () -> ignore (f ()));
  let out = In_channel.with_open_bin tmp In_channel.input_all in
  Sys.remove tmp;
  out

let at_jobs jobs f =
  Pool.set_default_jobs jobs;
  Fun.protect ~finally:(fun () -> Pool.set_default_jobs 1) f

let test_polyvariant_jobs_deterministic () =
  let cases = fixed_seed_sources 12 in
  let verdicts jobs =
    at_jobs jobs (fun () ->
        List.map
          (fun (_, src) ->
            match Fuzz_diff.check ~configs:policy_configs src with
            | None -> "pass"
            | Some (Fuzz_diff.Mismatch m) -> "mismatch:" ^ m.Fuzz_diff.mm_config
            | Some (Fuzz_diff.Verifier_diag { vd_config; _ }) -> "diag:" ^ vd_config)
          cases)
  in
  Alcotest.(check (list string)) "policy verdicts: jobs 4 ≡ jobs 1" (verdicts 1) (verdicts 4)

let test_versions_driver_deterministic () =
  let drive () = capture_stdout (fun () -> Fig_versions.print (Fig_versions.run ())) in
  let serial = at_jobs 1 drive in
  let parallel = at_jobs 4 drive in
  Alcotest.(check bool) "serial output nonempty" true (String.length serial > 0);
  Alcotest.(check string) "fig_versions: jobs 4 ≡ jobs 1" serial parallel

let suites =
  [
    ( "policy.unit",
      [
        Alcotest.test_case "probe matching per key shape" `Quick test_matches;
        Alcotest.test_case "widening ladder and key display" `Quick test_widen_ladder;
        Alcotest.test_case "hot-call keying decision table" `Quick test_choose_hot;
        Alcotest.test_case "tiered pass schedules (size cap)" `Quick test_compile_opt;
        Alcotest.test_case "tier-2 promotion gating" `Quick test_promote;
        Alcotest.test_case "miss actions: paper §4/§6" `Quick test_on_miss_paper;
        Alcotest.test_case "miss actions: polyvariant ladder" `Quick test_on_miss_polyvariant;
      ] );
    ( "policy.engine",
      [
        Alcotest.test_case "widening ladder schedule (values → tags → generic)" `Quick
          test_widening_ladder_schedule;
        Alcotest.test_case "novel-tag fill and best-rank probe" `Quick
          test_fill_and_best_rank_probe;
        Alcotest.test_case "promotion fills value versions beside the catch-all" `Quick
          test_promotion_fills_value_versions;
        Alcotest.test_case "interprocedural facts cross two call edges" `Quick
          test_interprocedural_two_deep_chain;
      ] );
    ( "policy.diff",
      [
        Alcotest.test_case "60-seed differential: paper and polyvariant ≡ interpreter"
          `Slow test_sixty_seed_differential;
        Alcotest.test_case "policy verdicts: jobs 4 ≡ jobs 1" `Quick
          test_polyvariant_jobs_deterministic;
        Alcotest.test_case "version-count driver: jobs 4 ≡ jobs 1" `Slow
          test_versions_driver_deterministic;
      ] );
  ]
