(* Profiler tests: the exact-attribution contract (per-origin cycle cells
   sum to precisely the engine report's totals, per tier), the
   byte-identical-when-off contract, span nesting well-formedness, and
   determinism of the folded flamegraph rendering across runs and across
   pool job counts. *)

let fib_src =
  "function fib(n) { if (n < 2) { return n; } return fib(n - 1) + fib(n - 2); }\n\
   var i = 0; while (i < 30) { fib(10); i = i + 1; } print(fib(12));"

let loop_src =
  "function sum(a, n) { var s = 0; var i = 0; while (i < n) { s = s + a[i]; i = i + 1; } \
   return s; }\n\
   var a = [1, 2, 3, 4, 5, 6, 7, 8];\n\
   var j = 0; var t = 0; while (j < 60) { t = t + sum(a, 8); j = j + 1; } print(t);"

(* Run [src] under [cfg] with a fresh recorder installed; returns the
   recorder, the report, and everything the program printed. *)
let run_recorded ?(cfg = Engine.default_config ~opt:Pipeline.all_on ()) src =
  let buf = Buffer.create 64 in
  Runtime.Builtins.with_print_hook
    (fun s ->
      Buffer.add_string buf s;
      Buffer.add_char buf '\n')
    (fun () ->
      let program = Bytecode.Compile.program_of_source src in
      let r = Profile.Recorder.create ~program in
      let report =
        Profile.with_recorder r (fun () -> Engine.run_program cfg program)
      in
      (r, report, Buffer.contents buf))

let run_plain ?(cfg = Engine.default_config ~opt:Pipeline.all_on ()) src =
  let buf = Buffer.create 64 in
  Runtime.Builtins.with_print_hook
    (fun s ->
      Buffer.add_string buf s;
      Buffer.add_char buf '\n')
    (fun () ->
      let report = Engine.run_source cfg src in
      (report, Buffer.contents buf))

(* ------------------------------------------------------------------ *)
(* Exact attribution                                                   *)
(* ------------------------------------------------------------------ *)

let check_exact cfg name src =
  let r, report, _ = run_recorded ~cfg src in
  Alcotest.(check int)
    (name ^ ": attributed = total")
    report.Engine.total_cycles
    (Profile.Recorder.total_cycles r);
  Alcotest.(check int)
    (name ^ ": interp tier exact")
    report.Engine.interp_cycles
    (Profile.Recorder.tier_cycles r Profile.T_interp);
  Alcotest.(check int)
    (name ^ ": native tiers exact")
    report.Engine.native_cycles
    (Profile.Recorder.tier_cycles r Profile.T_native_gen
    + Profile.Recorder.tier_cycles r Profile.T_native_spec);
  Alcotest.(check int)
    (name ^ ": compile tier exact")
    report.Engine.compile_cycles
    (Profile.Recorder.tier_cycles r Profile.T_compile)

let test_exact_sum () =
  List.iter
    (fun src ->
      check_exact (Engine.default_config ~opt:Pipeline.all_on ()) "spec" src;
      check_exact (Engine.default_config ()) "baseline" src;
      check_exact Engine.interp_only "interp-only" src)
    [ fib_src; loop_src ]

let test_exact_sum_selective () =
  (* Mixed-stability arguments: deopts, recompiles and the selective
     narrowing path all stay exactly attributed. *)
  let src =
    "function f(a, b) { return a * 10 + b; }\n\
     var i = 0; var t = 0; while (i < 40) { t = t + f(3, i % 4); i = i + 1; } print(t);"
  in
  check_exact
    (Engine.default_config ~opt:Pipeline.all_on ~selective:true ())
    "selective" src;
  check_exact (Engine.default_config ~opt:Pipeline.all_on ~cache_size:3 ()) "3-entry" src

let test_rows_consistent () =
  let r, report, _ = run_recorded fib_src in
  let rows = Profile.Recorder.rows r in
  Alcotest.(check int)
    "rows sum to total" report.Engine.total_cycles
    (List.fold_left (fun acc (row : Profile.row) -> acc + row.Profile.r_cycles) 0 rows);
  List.iter
    (fun (row : Profile.row) ->
      Alcotest.(check bool) "positive cycles" true (row.Profile.r_cycles > 0);
      Alcotest.(check bool) "positive count" true (row.Profile.r_count > 0))
    rows;
  let summaries = Profile.Recorder.by_function r in
  Alcotest.(check int)
    "function summaries sum to total" report.Engine.total_cycles
    (List.fold_left
       (fun acc (s : Profile.Recorder.func_summary) -> acc + s.Profile.Recorder.fs_total)
       0 summaries)

(* ------------------------------------------------------------------ *)
(* Profiling off: byte-identical                                       *)
(* ------------------------------------------------------------------ *)

let test_off_identical () =
  List.iter
    (fun src ->
      let plain_report, plain_out = run_plain src in
      let _, recorded_report, recorded_out = run_recorded src in
      (* A second plain run after the profiled one: the hooks were fully
         uninstalled by [with_recorder]. *)
      let plain2_report, _ = run_plain src in
      Alcotest.(check int)
        "profiled run charges identical cycles" plain_report.Engine.total_cycles
        recorded_report.Engine.total_cycles;
      Alcotest.(check string) "identical output" plain_out recorded_out;
      Alcotest.(check int)
        "hooks fully restored" plain_report.Engine.total_cycles
        plain2_report.Engine.total_cycles)
    [ fib_src; loop_src ]

(* ------------------------------------------------------------------ *)
(* Spans                                                               *)
(* ------------------------------------------------------------------ *)

let collect_spans ?(cfg = Engine.default_config ~opt:Pipeline.all_on ()) src =
  let acc = ref [] in
  let report =
    Telemetry.with_default_span_sinks
      [ (fun s -> acc := s :: !acc) ]
      (fun () ->
        Runtime.Builtins.with_print_hook ignore (fun () -> Engine.run_source cfg src))
  in
  (List.rev !acc, report)

let test_span_nesting () =
  let spans, report = collect_spans fib_src in
  Alcotest.(check bool) "spans were emitted" true (spans <> []);
  List.iter
    (fun (s : Telemetry.span) ->
      Alcotest.(check bool) "non-negative duration" true (s.Telemetry.sp_dur >= 0);
      Alcotest.(check bool) "non-negative start" true (s.Telemetry.sp_start >= 0);
      Alcotest.(check bool) "within the run" true
        (s.Telemetry.sp_start + s.Telemetry.sp_dur <= report.Engine.total_cycles))
    spans;
  (* Well-formed nesting: every non-root span lies within some span one
     level shallower (timestamp containment on the model-cycle clock). *)
  List.iter
    (fun (s : Telemetry.span) ->
      if s.Telemetry.sp_depth > 0 then
        Alcotest.(check bool)
          (Printf.sprintf "span %s at depth %d has an enclosing parent"
             s.Telemetry.sp_name s.Telemetry.sp_depth)
          true
          (List.exists
             (fun (p : Telemetry.span) ->
               p.Telemetry.sp_depth = s.Telemetry.sp_depth - 1
               && p.Telemetry.sp_start <= s.Telemetry.sp_start
               && s.Telemetry.sp_start + s.Telemetry.sp_dur
                  <= p.Telemetry.sp_start + p.Telemetry.sp_dur)
             spans))
    spans;
  (* The expected lifecycle phases all appear. *)
  let names = List.map (fun (s : Telemetry.span) -> s.Telemetry.sp_name) spans in
  List.iter
    (fun expected ->
      Alcotest.(check bool) ("has a " ^ expected ^ " span") true (List.mem expected names))
    [ "interpret"; "compile"; "codegen"; "native"; "hot" ];
  Alcotest.(check bool) "has pass children" true
    (List.exists
       (fun n -> String.length n > 5 && String.sub n 0 5 = "pass:")
       names)

let test_span_pass_children_contained () =
  let spans, _ = collect_spans loop_src in
  let compiles =
    List.filter
      (fun (s : Telemetry.span) ->
        s.Telemetry.sp_name = "compile" || s.Telemetry.sp_name = "recompile")
      spans
  in
  Alcotest.(check bool) "at least one compile span" true (compiles <> []);
  List.iter
    (fun (s : Telemetry.span) ->
      if s.Telemetry.sp_cat = "pass" || s.Telemetry.sp_cat = "codegen" then
        Alcotest.(check bool)
          (s.Telemetry.sp_name ^ " inside a compile span")
          true
          (List.exists
             (fun (c : Telemetry.span) ->
               c.Telemetry.sp_start <= s.Telemetry.sp_start
               && s.Telemetry.sp_start + s.Telemetry.sp_dur
                  <= c.Telemetry.sp_start + c.Telemetry.sp_dur)
             compiles))
    spans

let test_spans_off_identical () =
  let plain_report, _ = run_plain fib_src in
  let _, traced_report = collect_spans fib_src in
  Alcotest.(check int) "tracing charges nothing" plain_report.Engine.total_cycles
    traced_report.Engine.total_cycles

let test_tracer_discipline () =
  let acc = ref [] in
  let tr = Profile.Tracer.create ~emit:(fun s -> acc := s :: !acc) in
  Profile.Tracer.begin_span tr ~name:"outer" ~cat:"x" ~fid:0 ~fname:"f" ~now:0;
  Profile.Tracer.begin_span tr ~name:"inner" ~cat:"x" ~fid:0 ~fname:"f" ~now:10;
  Alcotest.(check int) "depth tracks opens" 2 (Profile.Tracer.depth tr);
  Profile.Tracer.end_span tr ~now:20;
  Profile.Tracer.end_span tr ~now:30;
  Alcotest.(check int) "drained" 0 (Profile.Tracer.depth tr);
  Alcotest.(check int) "both emitted" 2 (Profile.Tracer.emitted tr);
  (match !acc with
  | [ outer; inner ] ->
    Alcotest.(check string) "LIFO emission" "inner" inner.Telemetry.sp_name;
    Alcotest.(check int) "inner depth" 1 inner.Telemetry.sp_depth;
    Alcotest.(check int) "inner dur" 10 inner.Telemetry.sp_dur;
    Alcotest.(check string) "outer last" "outer" outer.Telemetry.sp_name;
    Alcotest.(check int) "outer dur" 30 outer.Telemetry.sp_dur
  | _ -> Alcotest.fail "expected exactly two spans");
  Alcotest.check_raises "unbalanced end raises"
    (Invalid_argument "Profile.Tracer.end_span: no open span") (fun () ->
      Profile.Tracer.end_span tr ~now:40)

let test_chrome_json_shape () =
  let spans, _ = collect_spans fib_src in
  List.iter
    (fun s ->
      let j = Telemetry.span_to_chrome_json s in
      List.iter
        (fun sub ->
          Alcotest.(check bool)
            (Printf.sprintf "%s in %s" sub j)
            true
            (Support.Strings.contains_substring j sub))
        [ {|"ph":"X"|}; {|"ts":|}; {|"dur":|}; {|"pid":1|}; {|"tid":1|}; {|"args":|} ])
    (match spans with [] -> [] | s :: _ -> [ s ])

(* ------------------------------------------------------------------ *)
(* Folded output determinism                                           *)
(* ------------------------------------------------------------------ *)

let folded_of src =
  let r, _, _ = run_recorded src in
  Profile.Recorder.folded r

let test_folded_deterministic () =
  Alcotest.(check string) "two runs render identical folded stacks" (folded_of fib_src)
    (folded_of fib_src)

let at_jobs jobs f =
  Pool.set_default_jobs jobs;
  Fun.protect ~finally:(fun () -> Pool.set_default_jobs 1) f

let test_folded_jobs_invariant () =
  (* Fan recorder runs out over the pool: each cell installs its recorder
     on whichever worker domain runs it, and the folded rendering is sorted,
     so the merged output cannot depend on scheduling. *)
  let cells jobs =
    at_jobs jobs (fun () ->
        Pool.map (Pool.default ()) folded_of [ fib_src; loop_src; fib_src ])
  in
  Alcotest.(check (list string)) "folded: jobs 4 ≡ jobs 1" (cells 1) (cells 4)

let suites =
  [
    ( "profile.exact",
      [
        Alcotest.test_case "per-origin sums equal report totals" `Quick test_exact_sum;
        Alcotest.test_case "exact under deopt/selective/k-entry" `Quick
          test_exact_sum_selective;
        Alcotest.test_case "rows and summaries are consistent" `Quick test_rows_consistent;
      ] );
    ( "profile.off",
      [
        Alcotest.test_case "profiling off is cycle- and output-identical" `Quick
          test_off_identical;
        Alcotest.test_case "tracing charges nothing" `Quick test_spans_off_identical;
      ] );
    ( "profile.spans",
      [
        Alcotest.test_case "nesting well-formed, phases present" `Quick test_span_nesting;
        Alcotest.test_case "pass/codegen children inside compile" `Quick
          test_span_pass_children_contained;
        Alcotest.test_case "tracer begin/end discipline" `Quick test_tracer_discipline;
        Alcotest.test_case "chrome trace-event shape" `Quick test_chrome_json_shape;
      ] );
    ( "profile.folded",
      [
        Alcotest.test_case "deterministic across runs" `Quick test_folded_deterministic;
        Alcotest.test_case "deterministic across job counts" `Quick
          test_folded_jobs_invariant;
      ] );
  ]
