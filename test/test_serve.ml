(* Service-layer tests: cooperative deadlines (exactly-once accounting;
   byte-identity when disabled), degrade mode (shed specialization, keep
   the warm cache), supervision and recycle isolation (quarantine backoff
   must not leak into a fresh isolate), the forced service fault points,
   the fired-fault hook, the smoke invariants and --jobs determinism of
   the whole service summary. *)

open Runtime

(* A program with one clearly hot, specializable function. *)
let hot_src =
  "function work(n) { var s = 0; for (var i = 0; i < n; i++) s = s + i; return s; }\n\
   var t = 0;\n\
   for (var j = 0; j < 120; j++) t = t + work(60);\n\
   print(t);\n"

let spec_cfg ?deadline () = Engine.default_config ~opt:Pipeline.all_on ?deadline ()

let run_quiet ?(cfg = Engine.default_config ()) ?(sinks = []) src =
  Builtins.with_print_hook ignore (fun () ->
      let engine = Engine.make cfg (Bytecode.Compile.program_of_source src) in
      List.iter (Telemetry.attach (Engine.telemetry engine)) sinks;
      let result = try Ok (Engine.run engine) with e -> Error e in
      (engine, result))

let total c name = Telemetry.Counters.total c name
let registry engine = Telemetry.counters (Engine.telemetry engine)

(* --- cooperative deadlines ------------------------------------------- *)

let test_deadline_trips_exactly_once () =
  let _, reference = run_quiet ~cfg:(spec_cfg ()) hot_src in
  let budget =
    match reference with
    | Ok rep -> rep.Engine.total_cycles / 2
    | Error _ -> Alcotest.fail "reference run failed"
  in
  let ring = Telemetry.Ring.create 65536 in
  let engine, result =
    run_quiet ~cfg:(spec_cfg ~deadline:budget ()) ~sinks:[ Telemetry.Ring.sink ring ] hot_src
  in
  (match result with
  | Error (Engine.Deadline_exceeded { dl_spent; dl_limit; _ }) ->
    Alcotest.(check int) "budget is the configured deadline" budget dl_limit;
    Alcotest.(check bool) "cycles were charged past the budget" true (dl_spent > dl_limit);
    (* The engine was fresh, so the run's spent cycles are the clock: the
       trip charged exactly once and nothing ran afterwards. *)
    Alcotest.(check int) "clock stops at the trip" dl_spent (Engine.clock engine)
  | Ok _ -> Alcotest.fail "expected Deadline_exceeded"
  | Error e -> Alcotest.fail ("unexpected exception: " ^ Printexc.to_string e));
  let hits =
    List.filter
      (fun e -> Telemetry.event_kind e = "deadline_hit")
      (Telemetry.Ring.contents ring)
  in
  Alcotest.(check int) "exactly one Deadline_hit event" 1 (List.length hits);
  Alcotest.(check int) "deadlines counter bumped exactly once" 1
    (total (registry engine) Telemetry.Key.deadlines);
  Alcotest.(check bool) "the run had compiled (specialized) code" true
    (total (registry engine) "compiles.specialized" >= 1)

let test_deadline_disabled_byte_identical () =
  let run cfg =
    let engine, result = run_quiet ~cfg hot_src in
    match result with
    | Ok rep ->
      ( rep.Engine.total_cycles,
        rep.Engine.native_cycles,
        rep.Engine.compile_cycles,
        rep.Engine.bytecode_instrs,
        Telemetry.Counters.rows (registry engine) )
    | Error e -> Alcotest.fail ("unexpected exception: " ^ Printexc.to_string e)
  in
  let off = run (spec_cfg ()) in
  let zero = run (spec_cfg ~deadline:0 ()) in
  let armed_never_trips = run (spec_cfg ~deadline:max_int ()) in
  Alcotest.(check bool) "deadline=0 is the default engine, byte for byte" true (off = zero);
  Alcotest.(check bool) "an armed but untripped deadline charges nothing" true
    (off = armed_never_trips)

(* --- degrade mode ----------------------------------------------------- *)

let test_degrade_sheds_specialization () =
  Builtins.with_print_hook ignore (fun () ->
      let engine = Engine.make (spec_cfg ()) (Bytecode.Compile.program_of_source hot_src) in
      Engine.set_degrade engine true;
      ignore (Engine.run engine);
      let c = registry engine in
      Alcotest.(check int) "no specialized compiles under degrade" 0
        (total c "compiles.specialized");
      Alcotest.(check bool) "degraded compiles counted" true (total c "compiles.degraded" >= 1);
      Alcotest.(check bool) "the hot function still compiled (generic)" true
        (total c "compiles" >= 1))

let test_degrade_preserves_warm_cache () =
  Builtins.with_print_hook ignore (fun () ->
      let engine = Engine.make (spec_cfg ()) (Bytecode.Compile.program_of_source hot_src) in
      ignore (Engine.run engine);
      let c = registry engine in
      Alcotest.(check bool) "warm run specialized" true (total c "compiles.specialized" >= 1);
      let compiles_before = total c "compiles" in
      Engine.set_degrade engine true;
      ignore (Engine.run engine);
      Alcotest.(check int) "degraded warm run recompiles nothing" compiles_before
        (total c "compiles");
      Alcotest.(check int) "no deopt under degrade" 0 (total c "deopts"))

(* --- supervision and recycle isolation -------------------------------- *)

(* A function quarantined (with exponential backoff) in one engine must
   not leak that state into the fresh engine a recycled isolate builds:
   the backoff lives in per-engine fstate, nothing global. *)
let test_recycle_does_not_leak_quarantine () =
  let program = Bytecode.Compile.program_of_source hot_src in
  let cfg = spec_cfg () in
  Builtins.with_print_hook ignore (fun () ->
      let first = Engine.make cfg program in
      Faults.with_plan
        (Faults.make ~seed:1 [ (Faults.Compile_diag, Faults.Every 1) ])
        (fun () -> ignore (Engine.run first));
      let c1 = registry first in
      Alcotest.(check bool) "first engine quarantined" true (total c1 "quarantines" >= 1);
      Alcotest.(check bool) "compiles aborted" true (total c1 "compiles.aborted" >= 1);
      let second = Engine.make cfg program in
      ignore (Engine.run second);
      let c2 = registry second in
      Alcotest.(check int) "fresh engine sees no quarantine" 0 (total c2 "quarantines");
      Alcotest.(check int) "fresh engine sees no aborts" 0 (total c2 "compiles.aborted");
      Alcotest.(check bool) "fresh engine compiles normally" true (total c2 "compiles" >= 1))

(* --- background compilation under service pressure -------------------- *)

let bg_spec_cfg ?deadline () =
  Engine.default_config ~opt:Pipeline.all_on ~bg_compile:true ?deadline ()

let test_deadline_expiry_with_compile_in_flight () =
  (* [work] goes hot around cycle 9000 and its artifact's modeled ready
     cycle is ~12400; a 10000-cycle budget trips in between, so the
     deadline fires while the compile is in flight. The expiry must be a
     clean request failure — engine warm, request still queued — and the
     next request (a fresh budget) harvests the artifact normally. *)
  Builtins.with_print_hook ignore (fun () ->
      let engine = Engine.make (bg_spec_cfg ~deadline:10_000 ()) (Bytecode.Compile.program_of_source hot_src) in
      (match Engine.run engine with
      | exception Engine.Deadline_exceeded _ -> ()
      | _ -> Alcotest.fail "expected Deadline_exceeded");
      Alcotest.(check int) "the compile was in flight at the trip" 1
        (Engine.bg_in_flight engine);
      let c = registry engine in
      Alcotest.(check int) "nothing installed yet" 0 (total c "bg.installed");
      (* The retry: a warm engine, a fresh budget, the artifact now past
         its ready cycle — it lands at the first call's harvest even
         though this attempt (whose budget is far below the program's
         cost) deadline-fails again. The expiry never loses the compile
         work: later requests run the binary. *)
      (match Engine.run engine with
      | _report -> ()
      | exception Engine.Deadline_exceeded _ -> ());
      Alcotest.(check bool) "the artifact landed on the retry" true
        (total c "bg.installed" >= 1);
      Alcotest.(check int) "queue drained" 0 (Engine.bg_in_flight engine))

let test_degrade_drains_and_suppresses_bg () =
  (* Degrade entered with a request in flight cancels it; while degraded
     nothing new is queued (compiles are synchronous-degraded instead). *)
  let tail_hot =
    "function f(x) { return (x + 1) | 0; }\n\
     var t = 0;\n\
     for (var i = 0; i < 11; i++) t = (t + f(4)) | 0;\n\
     print(t);"
  in
  Builtins.with_print_hook ignore (fun () ->
      let engine = Engine.make (bg_spec_cfg ()) (Bytecode.Compile.program_of_source tail_hot) in
      ignore (Engine.run engine);
      let c = registry engine in
      Alcotest.(check int) "one request in flight at the end" 1 (Engine.bg_in_flight engine);
      Engine.set_degrade engine true;
      Alcotest.(check int) "degrade drained it" 0 (Engine.bg_in_flight engine);
      Alcotest.(check int) "the cancel was counted" 1 (total c "bg.cancelled");
      (* Re-run degraded: f is hot from the first call; the compile must
         be synchronous-degraded, never queued. *)
      let queued_before = total c "bg.queued" in
      ignore (Engine.run engine);
      Alcotest.(check int) "nothing queued under degrade" queued_before (total c "bg.queued");
      Alcotest.(check bool) "the degraded compile happened synchronously" true
        (total c "compiles.degraded" >= 1);
      Alcotest.(check int) "still nothing in flight" 0 (Engine.bg_in_flight engine))

let test_recycle_does_not_leak_bg_artifacts () =
  (* The full service under overload + crashes + chaos with background
     compilation on: every recycle drains the dying isolate's queues, so
     the absorbed counters must account for every queued request as
     installed, cancelled, or still in flight at teardown — and nothing
     may escape the supervisor. *)
  let cfg =
    Serve.default_config ~isolates:2 ~requests:120 ~tenants:5 ~capacity:4
      ~queue_deadline:150_000 ~deadline:120_000 ~retries:2 ~backoff:2_000
      ~overload_depth:2 ~mean_gap:12_000 ~crash_fraction:0.08 ~seed:20130223 ~chaos:7
      ~engine:
        (Engine.default_config ~opt:Pipeline.all_on ~policy:Policy.Polyvariant
           ~cache_size:4 ~bg_compile:true ())
      ()
  in
  let s = Serve.run cfg in
  Alcotest.(check int) "no supervisor escapes" 0 (Serve.counter s "serve.escapes");
  Alcotest.(check bool) "requests served" true (s.Serve.sm_ok > 0);
  Alcotest.(check bool) "isolates recycled" true (Serve.counter s "serve.recycles" >= 1);
  Alcotest.(check bool) "degrade mode entered" true (Serve.counter s "serve.degraded" >= 1);
  Alcotest.(check bool) "the queue was used" true (Serve.counter s "bg.queued" >= 1);
  Alcotest.(check bool) "recycle/degrade drains cancelled requests" true
    (Serve.counter s "bg.cancelled" >= 1);
  (* Conservation: a queued request either installed, was cancelled, or
     was still in flight when its engine was dropped — never double-
     counted, never leaked into another tenant's engine. *)
  Alcotest.(check bool) "queued >= installed + cancelled" true
    (Serve.counter s "bg.queued"
    >= Serve.counter s "bg.installed" + Serve.counter s "bg.cancelled");
  (* Determinism of the whole bg-on service summary across --jobs. *)
  Pool.set_default_jobs 4;
  let s4 = Fun.protect ~finally:(fun () -> Pool.set_default_jobs 1) (fun () -> Serve.run cfg) in
  Alcotest.(check bool) "bg-on summary identical at --jobs 4 vs 1" true (s = s4)

let req id ~tenant ~arrival ~poison =
  { Serve.rq_id = id; rq_tenant = tenant; rq_arrival = arrival; rq_poison = poison }

let outcomes records =
  List.map (fun r -> Serve.outcome_to_string r.Serve.rr_outcome) records

let row rows name = Option.value (List.assoc_opt name rows) ~default:0

let test_supervisor_recycles_and_retries () =
  let cfg =
    Serve.default_config ~isolates:1 ~requests:0 ~tenants:2 ~retries:1 ~backoff:500
      ~seed:3 ()
  in
  let reqs =
    [
      req 0 ~tenant:0 ~arrival:0 ~poison:false;
      req 1 ~tenant:0 ~arrival:10 ~poison:true;
      req 2 ~tenant:0 ~arrival:20 ~poison:false;
    ]
  in
  let _, records, rows = Serve.run_isolate cfg ~isolate:0 reqs in
  Alcotest.(check (list string))
    "poison exhausts retries; the tenant survives" [ "ok"; "fault"; "ok" ]
    (outcomes records);
  (match records with
  | [ a; b; c ] ->
    Alcotest.(check bool) "first request was cold" false a.Serve.rr_warm;
    Alcotest.(check int) "poison attempted 1 + retries times" 2 b.Serve.rr_attempts;
    Alcotest.(check bool) "poison latency includes the backoff wait" true
      (b.Serve.rr_latency >= 500);
    Alcotest.(check bool) "recycle made the tenant cold again" false c.Serve.rr_warm
  | _ -> Alcotest.fail "expected three records");
  Alcotest.(check int) "one recycle per failing attempt" 2 (row rows Serve.Skey.recycles);
  Alcotest.(check int) "one retry" 1 (row rows Serve.Skey.retries);
  Alcotest.(check int) "nothing escaped the supervisor" 0 (row rows Serve.Skey.escapes)

(* --- forced service fault points -------------------------------------- *)

let two_requests = [ req 0 ~tenant:0 ~arrival:0 ~poison:false; req 1 ~tenant:0 ~arrival:10 ~poison:false ]

let test_forced_admission_shed () =
  let cfg = Serve.default_config ~isolates:1 ~requests:0 ~tenants:1 ~seed:5 () in
  let _, records, rows =
    Faults.with_plan
      (Faults.make ~seed:1 [ (Faults.Serve_admit, Faults.Nth 1) ])
      (fun () -> Serve.run_isolate cfg ~isolate:0 two_requests)
  in
  Alcotest.(check (list string)) "first shed by the injected fault" [ "shed"; "ok" ]
    (outcomes records);
  Alcotest.(check int) "the firing was counted" 1
    (row rows (Telemetry.Key.faults_fired "serve_admit"))

let test_forced_deadline_not_retried () =
  let cfg =
    Serve.default_config ~isolates:1 ~requests:0 ~tenants:1 ~deadline:1_000_000
      ~retries:2 ~seed:5 ()
  in
  let _, records, rows =
    Faults.with_plan
      (Faults.make ~seed:1 [ (Faults.Serve_deadline, Faults.Nth 1) ])
      (fun () -> Serve.run_isolate cfg ~isolate:0 two_requests)
  in
  Alcotest.(check (list string)) "deadline fault fails cleanly" [ "deadline-exec"; "ok" ]
    (outcomes records);
  (match records with
  | first :: _ ->
    Alcotest.(check int) "a deadline miss is never retried" 1 first.Serve.rr_attempts;
    Alcotest.(check int) "the attempt was charged its full budget" 1_000_000
      first.Serve.rr_latency
  | [] -> Alcotest.fail "no records");
  Alcotest.(check int) "no retries" 0 (row rows Serve.Skey.retries);
  Alcotest.(check int) "the firing was counted" 1
    (row rows (Telemetry.Key.faults_fired "serve_deadline"))

let test_fired_hook () =
  let fired = ref [] in
  Faults.with_fired_hook
    (fun p -> fired := p :: !fired)
    (fun () ->
      Alcotest.(check bool) "no plan, no fire" false (Faults.fire Faults.Serve_admit);
      Faults.with_plan
        (Faults.make ~seed:1 [ (Faults.Serve_admit, Faults.Nth 2) ])
        (fun () ->
          Alcotest.(check bool) "first occurrence passes" false (Faults.fire Faults.Serve_admit);
          Alcotest.(check bool) "second occurrence fires" true (Faults.fire Faults.Serve_admit)));
  Alcotest.(check (list string))
    "the hook saw exactly the fired occurrence" [ "serve_admit" ]
    (List.map Faults.point_to_string !fired)

let test_sample_covers_service_points () =
  let covered p =
    List.exists
      (fun seed -> List.mem_assoc p (Faults.spec_of (Faults.sample seed)))
      (List.init 64 (fun i -> i))
  in
  List.iter
    (fun p ->
      Alcotest.(check bool)
        (Faults.point_to_string p ^ " reachable from sample") true (covered p))
    [ Faults.Version_widen; Faults.Serve_admit; Faults.Serve_deadline ]

(* --- the smoke scenario and --jobs determinism ------------------------ *)

let test_smoke_invariants () =
  let s = Serve.run (Serve.smoke_config ()) in
  (match Serve.smoke_check s with
  | Ok () -> ()
  | Error problems -> Alcotest.fail (String.concat "; " problems));
  Alcotest.(check int) "classification partitions the requests" s.Serve.sm_requests
    (s.Serve.sm_ok + s.Serve.sm_shed + s.Serve.sm_deadline_queue + s.Serve.sm_deadline_exec
   + s.Serve.sm_fault)

let at_jobs jobs f =
  Pool.set_default_jobs jobs;
  Fun.protect ~finally:(fun () -> Pool.set_default_jobs 1) f

let test_jobs_deterministic () =
  let run jobs = at_jobs jobs (fun () -> Serve.run (Serve.smoke_config ())) in
  let serial = run 1 in
  let parallel = run 4 in
  Alcotest.(check bool) "whole summary identical at --jobs 4 vs 1" true (serial = parallel)

(* --- observability ---------------------------------------------------- *)

let obs_all_on =
  {
    Serve.obs_trace = true;
    obs_metrics = true;
    obs_metrics_every = 100_000;
    obs_flight = true;
    obs_flight_capacity = 64;
    obs_flight_max_dumps = 4;
  }

(* A second fixture with background compilation on — the config the bg
   recycle test uses, so the latency profile differs from the smoke. *)
let bg_chaos_config () =
  Serve.default_config ~isolates:2 ~requests:120 ~tenants:5 ~capacity:4
    ~queue_deadline:150_000 ~deadline:120_000 ~retries:2 ~backoff:2_000
    ~overload_depth:2 ~mean_gap:12_000 ~crash_fraction:0.08 ~seed:20130223 ~chaos:7
    ~engine:
      (Engine.default_config ~opt:Pipeline.all_on ~policy:Policy.Polyvariant
         ~cache_size:4 ~bg_compile:true ())
    ()

(* The service's original percentile computation, kept as the reference
   the metrics histogram must reproduce bit for bit. *)
let ref_percentile latencies p =
  let sorted = Array.of_list latencies in
  Array.sort compare sorted;
  let n = Array.length sorted in
  if n = 0 then 0
  else begin
    let rank = int_of_float (ceil (p *. float_of_int n)) - 1 in
    sorted.(min (n - 1) (max 0 rank))
  end

let test_histogram_exactness_on_fixtures () =
  List.iter
    (fun (name, cfg) ->
      let s = Serve.run cfg in
      let served =
        List.filter_map
          (fun r -> if r.Serve.rr_outcome = Serve.Served then Some r.Serve.rr_latency else None)
          s.Serve.sm_records
      in
      Alcotest.(check bool) (name ^ ": fixture serves requests") true (served <> []);
      List.iter
        (fun (what, p, got) ->
          Alcotest.(check int)
            (Printf.sprintf "%s: %s bit-for-bit" name what)
            (ref_percentile served p) got)
        [
          ("p50", 0.50, s.Serve.sm_p50);
          ("p95", 0.95, s.Serve.sm_p95);
          ("p99", 0.99, s.Serve.sm_p99);
        ])
    [
      ("smoke", Serve.smoke_config ());
      ("bg-chaos", bg_chaos_config ());
      ( "tiny",
        Serve.default_config ~isolates:1 ~requests:3 ~tenants:1 ~mean_gap:50_000
          ~seed:11 () );
    ]

let test_obs_on_leaves_summary_unchanged () =
  let base = Serve.smoke_config () in
  let off = Serve.run base in
  let on, obs = Serve.run_full { base with Serve.obs = obs_all_on } in
  Alcotest.(check bool) "summary identical with every observer attached" true (off = on);
  Alcotest.(check bool) "spans were captured" true (obs.Serve.or_spans <> []);
  Alcotest.(check bool) "metrics were captured" true (Option.is_some obs.Serve.or_metrics);
  Alcotest.(check bool) "snapshots were captured" true (obs.Serve.or_snapshots <> []);
  Alcotest.(check bool) "the chaos scenario triggered post-mortems" true
    (obs.Serve.or_flights <> [])

let test_obs_artifacts_jobs_deterministic () =
  let cfg = { (Serve.smoke_config ()) with Serve.obs = obs_all_on } in
  let run jobs = at_jobs jobs (fun () -> Serve.run_full cfg) in
  let s1, o1 = run 1 in
  let s4, o4 = run 4 in
  Alcotest.(check bool) "summary identical" true (s1 = s4);
  Alcotest.(check bool) "spans identical" true (o1.Serve.or_spans = o4.Serve.or_spans);
  Alcotest.(check bool) "snapshots identical" true
    (o1.Serve.or_snapshots = o4.Serve.or_snapshots);
  Alcotest.(check bool) "flight dumps identical" true
    (o1.Serve.or_flights = o4.Serve.or_flights);
  (* The rendered forms too: what the CLI writes to disk. *)
  let jsonl o =
    List.concat_map (fun (_, d) -> Flight.dump_jsonl d) o.Serve.or_flights
  in
  Alcotest.(check (list string)) "flight JSONL identical" (jsonl o1) (jsonl o4);
  let prom o =
    match o.Serve.or_metrics with Some m -> Metrics.to_prometheus m | None -> ""
  in
  Alcotest.(check string) "prometheus text identical" (prom o1) (prom o4)

let test_request_spans_stitchable () =
  (* The bg fixture: background compiles are what the flow events stitch. *)
  let cfg = { (bg_chaos_config ()) with Serve.obs = obs_all_on } in
  let s, obs = Serve.run_full cfg in
  let spans = obs.Serve.or_spans in
  (* Every request record has exactly one "request" span, stamped with
     its trace context: trace id rq_id + 1, lane = trace. *)
  let request_spans =
    List.filter
      (fun sp -> sp.Telemetry.sp_name = "request" && sp.Telemetry.sp_ph = Telemetry.Ph_complete)
      spans
  in
  Alcotest.(check int) "one request span per record"
    (List.length s.Serve.sm_records)
    (List.length request_spans);
  List.iter
    (fun sp ->
      Alcotest.(check int) "trace id is rq_id + 1" (sp.Telemetry.sp_fid + 1)
        sp.Telemetry.sp_trace;
      Alcotest.(check int) "lane is the trace id" sp.Telemetry.sp_trace
        sp.Telemetry.sp_lane)
    request_spans;
  (* Engine-side spans executed on behalf of a request carry its trace. *)
  Alcotest.(check bool) "engine spans are stamped with request traces" true
    (List.exists
       (fun sp -> sp.Telemetry.sp_cat <> "serve" && sp.Telemetry.sp_trace > 0)
       spans);
  (* Flow stitches balance: every flow id has exactly one start and one
     finish, in timestamp order. *)
  let flows = Hashtbl.create 64 in
  List.iter
    (fun sp ->
      match sp.Telemetry.sp_ph with
      | Telemetry.Ph_complete -> ()
      | Telemetry.Ph_flow_start | Telemetry.Ph_flow_finish ->
        let starts, finishes, first_start, last_finish =
          Option.value
            (Hashtbl.find_opt flows sp.Telemetry.sp_flow)
            ~default:(0, 0, max_int, min_int)
        in
        let cell =
          if sp.Telemetry.sp_ph = Telemetry.Ph_flow_start then
            (starts + 1, finishes, min first_start sp.Telemetry.sp_start, last_finish)
          else (starts, finishes + 1, first_start, max last_finish sp.Telemetry.sp_start)
        in
        Hashtbl.replace flows sp.Telemetry.sp_flow cell)
    spans;
  Alcotest.(check bool) "background compiles produced flows" true
    (Hashtbl.length flows > 0);
  Hashtbl.iter
    (fun id (starts, finishes, first_start, last_finish) ->
      Alcotest.(check int) (Printf.sprintf "flow %d: one start" id) 1 starts;
      Alcotest.(check int) (Printf.sprintf "flow %d: one finish" id) 1 finishes;
      Alcotest.(check bool)
        (Printf.sprintf "flow %d: begin before end" id)
        true
        (first_start <= last_finish))
    flows

let suites =
  [
    ( "serve.deadlines",
      [
        Alcotest.test_case "trips exactly once, cycles charged" `Quick
          test_deadline_trips_exactly_once;
        Alcotest.test_case "disabled/untripped is byte-identical" `Quick
          test_deadline_disabled_byte_identical;
      ] );
    ( "serve.degrade",
      [
        Alcotest.test_case "sheds specialization" `Quick test_degrade_sheds_specialization;
        Alcotest.test_case "preserves the warm cache" `Quick test_degrade_preserves_warm_cache;
      ] );
    ( "serve.supervision",
      [
        Alcotest.test_case "recycle does not leak quarantine" `Quick
          test_recycle_does_not_leak_quarantine;
        Alcotest.test_case "supervisor recycles and retries" `Quick
          test_supervisor_recycles_and_retries;
      ] );
    ( "serve.faults",
      [
        Alcotest.test_case "forced admission shed" `Quick test_forced_admission_shed;
        Alcotest.test_case "forced deadline, no retry" `Quick test_forced_deadline_not_retried;
        Alcotest.test_case "fired hook" `Quick test_fired_hook;
        Alcotest.test_case "sample covers service points" `Quick
          test_sample_covers_service_points;
      ] );
    ( "serve.bg",
      [
        Alcotest.test_case "deadline expiry with a compile in flight" `Quick
          test_deadline_expiry_with_compile_in_flight;
        Alcotest.test_case "degrade drains and suppresses the queue" `Quick
          test_degrade_drains_and_suppresses_bg;
        Alcotest.test_case "recycle never leaks queued artifacts" `Quick
          test_recycle_does_not_leak_bg_artifacts;
      ] );
    ( "serve.smoke",
      [
        Alcotest.test_case "overload invariants" `Quick test_smoke_invariants;
        Alcotest.test_case "jobs 4 = jobs 1" `Quick test_jobs_deterministic;
      ] );
    ( "serve.obs",
      [
        Alcotest.test_case "histogram exactness on the fixtures" `Quick
          test_histogram_exactness_on_fixtures;
        Alcotest.test_case "observers leave the summary unchanged" `Quick
          test_obs_on_leaves_summary_unchanged;
        Alcotest.test_case "artifacts identical at jobs 4 vs 1" `Quick
          test_obs_artifacts_jobs_deterministic;
        Alcotest.test_case "request spans stitch by trace id" `Quick
          test_request_spans_stitchable;
      ] );
  ]
