(* Telemetry-layer tests: the ring/JSON sinks themselves, exact event
   sequences through the engine's policy transitions, the counter registry
   as the report's source of truth, and regression coverage for the two
   deoptimization-policy bugs (per-binary strike counting; entry bails on
   specialized binaries counting as §4 deoptimizations). *)

open Runtime

(* Run a source program on an explicit engine so the test can attach ring
   sinks and read the counter registry afterwards. *)
let run ?(cfg = Engine.default_config ~opt:Pipeline.all_on ()) ?(sinks = []) src =
  let buf = Buffer.create 64 in
  Builtins.with_print_hook
    (fun s -> Buffer.add_string buf s; Buffer.add_char buf '\n')
    (fun () ->
      let engine = Engine.make cfg (Bytecode.Compile.program_of_source src) in
      List.iter (Telemetry.attach (Engine.telemetry engine)) sinks;
      let report = Engine.run engine in
      (engine, report, Buffer.contents buf))

let fn report name =
  List.find (fun (f : Engine.func_report) -> f.Engine.fr_name = name) report.Engine.functions

let events_of ring name =
  List.filter (fun e -> Telemetry.event_fname e = name) (Telemetry.Ring.contents ring)

let kinds events = List.map Telemetry.event_kind events

(* The paper's guards survive in PS-only pipelines; the full pipeline would
   constant-fold a bounds check whose array and index are both burned in. *)
let ps_only = Pipeline.make ~ps:true "PS-only"

(* ------------------------------------------------------------------ *)
(* The sinks themselves                                                *)
(* ------------------------------------------------------------------ *)

let test_ring_buffer () =
  let ring = Telemetry.Ring.create 3 in
  let sink = Telemetry.Ring.sink ring in
  for i = 0 to 4 do
    sink (Telemetry.Blacklist { fid = i; fname = "f" ^ string_of_int i })
  done;
  Alcotest.(check int) "capacity" 3 (Telemetry.Ring.capacity ring);
  Alcotest.(check int) "length" 3 (Telemetry.Ring.length ring);
  Alcotest.(check int) "dropped" 2 (Telemetry.Ring.dropped ring);
  Alcotest.(check (list int)) "keeps the most recent, oldest first" [ 2; 3; 4 ]
    (List.map Telemetry.event_fid (Telemetry.Ring.contents ring));
  Telemetry.Ring.clear ring;
  Alcotest.(check int) "clear empties" 0 (Telemetry.Ring.length ring)

(* Regression: the counted ring sink exposes its losses as the
   [telemetry.dropped] counter, on an exact overflow schedule — the first
   [capacity] events are free, every one after bumps by exactly one, and
   the counter always equals [Ring.dropped]. *)
let test_ring_counted_sink_overflow_schedule () =
  let capacity = 3 and total = 9 in
  let ring = Telemetry.Ring.create capacity in
  let counters = Telemetry.Counters.create ~nfuncs:1 () in
  let sink = Telemetry.ring_counted_sink ring counters in
  for i = 1 to total do
    sink (Telemetry.Blacklist { fid = i; fname = "f" ^ string_of_int i });
    let expected = max 0 (i - capacity) in
    Alcotest.(check int)
      (Printf.sprintf "dropped counter after event %d" i)
      expected
      (Telemetry.Counters.total counters Telemetry.Key.telemetry_dropped);
    Alcotest.(check int)
      (Printf.sprintf "counter tracks Ring.dropped after event %d" i)
      (Telemetry.Ring.dropped ring)
      (Telemetry.Counters.total counters Telemetry.Key.telemetry_dropped)
  done;
  (* The ring still behaves as a plain ring underneath. *)
  Alcotest.(check (list int)) "most recent survive" [ 7; 8; 9 ]
    (List.map Telemetry.event_fid (Telemetry.Ring.contents ring));
  (* Clearing the ring does not rewind the counter: losses are monotone. *)
  Telemetry.Ring.clear ring;
  Alcotest.(check int) "counter is monotone across clear" (total - capacity)
    (Telemetry.Counters.total counters Telemetry.Key.telemetry_dropped)

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  go 0

let test_json_escaping () =
  let j = Telemetry.to_json (Telemetry.Blacklist { fid = 3; fname = "we\"ird\\name" }) in
  Alcotest.(check bool) "kind tag" true (contains ~sub:{|"ev":"blacklist"|} j);
  Alcotest.(check bool) "escapes quotes and backslashes" true
    (contains ~sub:{|we\"ird\\name|} j)

let test_json_escape_controls () =
  (* RFC 8259: the short escapes where they exist, \u00XX elsewhere —
     including the whole < 0x10 range, whose hex digits need the leading
     zero the old %02x form already gave but \b and \f previously fell into. *)
  Alcotest.(check string) "short forms" {|a\bb\tc\nd\fe\rf|}
    (Telemetry.json_escape "a\bb\tc\nd\012e\rf");
  Alcotest.(check string) "below 0x10" {|\u0000\u0001\u000e\u000f|}
    (Telemetry.json_escape "\000\001\014\015");
  Alcotest.(check string) "0x10..0x1f" {|\u0010\u001f|}
    (Telemetry.json_escape "\016\031");
  Alcotest.(check string) "plain text untouched" "plain text!"
    (Telemetry.json_escape "plain text!")

let test_json_roundtrip () =
  let roundtrips s =
    Alcotest.(check string)
      (Printf.sprintf "roundtrip %S" s)
      s
      (Telemetry.json_unescape (Telemetry.json_escape s))
  in
  List.iter roundtrips
    [
      ""; "plain"; "quote\" backslash\\"; "\b\t\n\012\r"; "\000\001\015\016\031";
      "mixed \127\255 high bytes"; "trailing\\";
    ];
  (* Property: every byte string round-trips. *)
  let all_bytes = String.init 256 Char.chr in
  roundtrips all_bytes;
  QCheck.Test.check_exn
    (QCheck.Test.make ~name:"json escape roundtrip" ~count:500
       QCheck.(string_gen Gen.char)
       (fun s -> Telemetry.json_unescape (Telemetry.json_escape s) = s));
  (* Malformed escapes are rejected, not silently mangled. *)
  List.iter
    (fun bad ->
      Alcotest.(check bool)
        (Printf.sprintf "rejects %S" bad)
        true
        (match Telemetry.json_unescape bad with
        | _ -> false
        | exception Invalid_argument _ -> true))
    [ {|\q|}; {|\u12|}; {|\u12zz|}; "tail\\"; {|\u0100|} ]

(* ------------------------------------------------------------------ *)
(* Event sequences through the engine                                  *)
(* ------------------------------------------------------------------ *)

(* A global index keeps the bounds guard live in the specialized binary
   (the arguments are burned in; the global is not), so mutating it drives
   an in-body bailout through a cache hit. *)
let bailing_src tail =
  "var idx = 1;\n\
   function f(s) { return s[idx]; }\n\
   var a = [1, 2, 3];\n\
   var t = 0;\n\
   for (var k = 0; k < 20; k++) t = (t + f(a)) | 0;\n\
   idx = 99;\n" ^ tail ^ "\nprint(t);"

let test_exact_event_sequence () =
  (* The life cycle of one specialized binary, event by event: specialize
     and compile when hot, serve cache hits, then one in-body bailout that
     (with max_bailouts = 1) immediately strikes the binary out. *)
  let ring = Telemetry.Ring.create 256 in
  let cfg = { (Engine.default_config ~opt:ps_only ()) with Engine.max_bailouts = 1 } in
  let _, report, out =
    run ~cfg ~sinks:[ Telemetry.Ring.sink ring ] (bailing_src "f(a);")
  in
  Alcotest.(check string) "result" "40\n" out;
  Alcotest.(check (list string)) "exact event sequence"
    ([ "specialize"; "compile_start"; "guard_elided"; "compile_end" ]
    @ List.init 11 (fun _ -> "cache_hit")
    @ [ "bailout"; "deopt" ])
    (kinds (events_of ring "f"));
  (match List.rev (events_of ring "f") with
  | Telemetry.Deopt { reason = Telemetry.Strike_limit; _ }
    :: Telemetry.Bailout { strikes = 1; pc; osr_entry = false; _ } :: _ ->
    Alcotest.(check bool) "in-body bailout" true (pc > 0)
  | _ -> Alcotest.fail "expected a strike-limit deopt right after the bailout");
  Alcotest.(check int) "one discard, one recompile pending" 1 (fn report "f").Engine.fr_bailouts

let test_strike_limit_is_exact () =
  (* Regression (off-by-one): max_bailouts = 2 must mean the binary dies at
     its second bailout, not survive into a third. *)
  let ring = Telemetry.Ring.create 1024 in
  let cfg = { (Engine.default_config ~opt:ps_only ()) with Engine.max_bailouts = 2 } in
  let engine, report, _ =
    run ~cfg ~sinks:[ Telemetry.Ring.sink ring ]
      (bailing_src "for (var k = 0; k < 6; k++) f(a);")
  in
  let events = events_of ring "f" in
  let rec before_first_strike acc = function
    | [] -> List.rev acc
    | Telemetry.Deopt { reason = Telemetry.Strike_limit; _ } :: _ -> List.rev acc
    | e :: rest -> before_first_strike (e :: acc) rest
  in
  let bailouts_before =
    List.length
      (List.filter
         (function Telemetry.Bailout _ -> true | _ -> false)
         (before_first_strike [] events))
  in
  Alcotest.(check int) "discarded at exactly the second bailout" 2 bailouts_before;
  (* Every strike-out happens at exactly max_bailouts strikes. *)
  let arr = Array.of_list events in
  Array.iteri
    (fun i e ->
      match e with
      | Telemetry.Deopt { reason = Telemetry.Strike_limit; _ } -> (
        match arr.(i - 1) with
        | Telemetry.Bailout { strikes; _ } ->
          Alcotest.(check int) "strikes at discard" 2 strikes
        | _ -> Alcotest.fail "strike deopt not preceded by its bailout")
      | _ -> ())
    arr;
  (* 6 bailing calls: strike out at calls 2/4/6, recompile at calls 3/5. *)
  let c = Telemetry.counters (Engine.telemetry engine) in
  let fid = (fn report "f").Engine.fr_fid in
  let get key = Telemetry.Counters.get c ~fid key in
  Alcotest.(check int) "bailouts" 6 (get Telemetry.Key.bailouts);
  Alcotest.(check int) "strike discards" 3 (get Telemetry.Key.strike_discards);
  Alcotest.(check int) "compiles" 3 (get Telemetry.Key.compiles);
  (* Strike discards refresh the binary; they are not §4 deoptimizations
     and must not cost the function its specialization rights. *)
  Alcotest.(check int) "no §4 deopt" 0 (get Telemetry.Key.deopts);
  Alcotest.(check bool) "not reported deoptimized" false (fn report "f").Engine.fr_deoptimized

let test_strikes_are_per_binary () =
  (* Regression (cross-binary leak): with a k-entry cache, each binary
     carries its own strike count. Two bailing tuples interleaved with a
     healthy one: the healthy binary compiles once and is never discarded,
     and every strike-out happens at exactly max_bailouts strikes of its
     own binary. *)
  let ring = Telemetry.Ring.create 4096 in
  let cfg =
    {
      (Engine.default_config ~opt:ps_only ~cache_size:3 ()) with
      Engine.max_bailouts = 3;
    }
  in
  let engine, report, _ =
    run ~cfg ~sinks:[ Telemetry.Ring.sink ring ]
      "function f(s, i) { return s[i]; }\n\
       var a = [1, 2, 3, 4];\n\
       var t = 0;\n\
       for (var k = 0; k < 20; k++) t = (t + f(a, 1)) | 0;\n\
       for (var k = 0; k < 8; k++) { f(a, 5); f(a, 6); t = (t + f(a, 1)) | 0; }\n\
       print(t);"
  in
  let events = Array.of_list (events_of ring "f") in
  Array.iteri
    (fun i e ->
      match e with
      | Telemetry.Deopt { reason = Telemetry.Strike_limit; _ } -> (
        match events.(i - 1) with
        | Telemetry.Bailout { strikes; _ } ->
          Alcotest.(check int) "own binary at its limit" 3 strikes
        | _ -> Alcotest.fail "strike deopt not preceded by its bailout")
      | _ -> ())
    events;
  let c = Telemetry.counters (Engine.telemetry engine) in
  let fid = (fn report "f").Engine.fr_fid in
  let get key = Telemetry.Counters.get c ~fid key in
  (* Per bailing tuple: 8 bailouts, struck out twice, compiled 3 times.
     The healthy tuple compiles once and never bails: under the old shared
     counter its binary would have been condemned by its neighbours'
     strikes. *)
  Alcotest.(check int) "bailouts" 16 (get Telemetry.Key.bailouts);
  Alcotest.(check int) "strike discards" 4 (get Telemetry.Key.strike_discards);
  Alcotest.(check int) "compiles" 7 (get Telemetry.Key.compiles);
  Alcotest.(check int) "no §4 deopt" 0 (get Telemetry.Key.deopts);
  (* The healthy binary kept serving to the end: the last events are its
     cache hits, not recompiles. *)
  (match events.(Array.length events - 1) with
  | Telemetry.Cache_hit _ -> ()
  | e -> Alcotest.fail ("last event should be a cache hit, got " ^ Telemetry.event_kind e))

let test_strikes_per_binary_polyvariant () =
  (* The per-binary strike regression, re-pinned on the polyvariant path
     with cache_size > 1: a healthy promoted value version, the generic
     catch-all, and a bailing value version that is re-promoted after each
     strike-out. Every [max_bailouts]-th in-body bailout discards only its
     own version — the healthy sibling and the catch-all survive to the
     end, and none of it costs the function its specialization rights. *)
  let ring = Telemetry.Ring.create 4096 in
  let cfg =
    {
      (Engine.default_config ~opt:ps_only ~policy:Policy.Polyvariant
         ~cache_size:3 ()) with
      Engine.max_bailouts = 3;
    }
  in
  let engine, report, out =
    run ~cfg ~sinks:[ Telemetry.Ring.sink ring ]
      "function f(s, i) { return s[i]; }\n\
       var a = [1, 2, 3, 4];\n\
       var t = 0;\n\
       for (var k = 0; k < 30; k++) t = (t + f(a, 1)) | 0;\n\
       for (var k = 0; k < 8; k++) { f(a, 5); t = (t + f(a, 1)) | 0; }\n\
       print(t);"
  in
  Alcotest.(check string) "result" "76\n" out;
  let events = Array.of_list (events_of ring "f") in
  Array.iteri
    (fun i e ->
      match e with
      | Telemetry.Deopt { reason = Telemetry.Strike_limit; _ } -> (
        match events.(i - 1) with
        | Telemetry.Bailout { strikes; _ } ->
          Alcotest.(check int) "own binary at its limit" 3 strikes
        | _ -> Alcotest.fail "strike deopt not preceded by its bailout")
      | _ -> ())
    events;
  let c = Telemetry.counters (Engine.telemetry engine) in
  let fid = (fn report "f").Engine.fr_fid in
  let get key = Telemetry.Counters.get c ~fid key in
  (* Tier-1 generic at call 10; values(a,1) promoted at call 30; then each
     f(a,5) call either bails its live values(a,5) binary or — right after
     a strike-out — re-promotes a fresh one off a generic cache hit.
     Per-binary striking: discards at bails 3 and 6 only. *)
  Alcotest.(check int) "compiles" 5 (get Telemetry.Key.compiles);
  Alcotest.(check int) "bailouts" 8 (get Telemetry.Key.bailouts);
  Alcotest.(check int) "strike discards" 2 (get Telemetry.Key.strike_discards);
  Alcotest.(check int) "promotions" 4 (get Telemetry.Key.versions_promoted);
  Alcotest.(check int) "no §4 deopt" 0 (get Telemetry.Key.deopts);
  Alcotest.(check bool) "not reported deoptimized" false
    (fn report "f").Engine.fr_deoptimized;
  (* The healthy value version kept serving to the end. *)
  match events.(Array.length events - 1) with
  | Telemetry.Cache_hit _ -> ()
  | e -> Alcotest.fail ("last event should be a cache hit, got " ^ Telemetry.event_kind e)

let test_entry_bail_is_a_deopt () =
  (* Regression: an entry-guard failure on a specialized binary is a §4
     deoptimization — the probe admitted the call, the entry type barrier
     rejected it — and must be visible as one. Selective mode narrows and
     respecializes instead of blacklisting, and the widened type feedback
     makes the replacement binary guard-free on that argument. *)
  let ring = Telemetry.Ring.create 1024 in
  let cfg = Engine.default_config ~opt:Pipeline.all_on ~selective:true () in
  let src =
    "function g(a, b) { return (a * 10 + b) | 0; }\n\
     var t = 0;\n\
     for (var k = 0; k < 30; k++) t = (t + g(5, k % 7)) | 0;\n\
     t = (t + g(5, \"x\")) | 0;\n\
     for (var k = 0; k < 10; k++) t = (t + g(5, k % 7)) | 0;\n\
     print(t);"
  in
  let engine, report, out = run ~cfg ~sinks:[ Telemetry.Ring.sink ring ] src in
  let _, _, interp_out = run ~cfg:Engine.interp_only src in
  Alcotest.(check string) "matches the interpreter" interp_out out;
  let g = fn report "g" in
  Alcotest.(check bool) "counted as deoptimized" true g.Engine.fr_deoptimized;
  let c = Telemetry.counters (Engine.telemetry engine) in
  let get key = Telemetry.Counters.get c ~fid:g.Engine.fr_fid key in
  Alcotest.(check int) "one entry bailout" 1 (get Telemetry.Key.bailouts_entry);
  Alcotest.(check int) "one §4 deopt" 1 (get Telemetry.Key.deopts);
  (* The burned position matched, so the probe hit: the type change is
     caught by the entry guard, never by the cache probe. *)
  Alcotest.(check int) "no cache miss" 0 (get Telemetry.Key.cache_misses);
  Alcotest.(check int) "narrowed once, not blacklisted" 2 (get Telemetry.Key.compiles);
  Alcotest.(check int) "no blacklist" 0 (get Telemetry.Key.blacklists);
  (match
     List.filter
       (function Telemetry.Deopt _ | Telemetry.Bailout _ -> true | _ -> false)
       (events_of ring "g")
   with
  | [ Telemetry.Bailout { pc = 0; strikes = 0; _ };
      Telemetry.Deopt { reason = Telemetry.Entry_guard; _ } ] -> ()
  | _ -> Alcotest.fail "expected exactly one entry bailout followed by an entry-guard deopt");
  (* After narrowing, the replacement binary serves every remaining call. *)
  (match List.rev (events_of ring "g") with
  | Telemetry.Cache_hit _ :: _ -> ()
  | _ -> Alcotest.fail "expected the narrowed binary to serve the tail calls")

(* ------------------------------------------------------------------ *)
(* Cache policy                                                        *)
(* ------------------------------------------------------------------ *)

let test_lru_move_to_front () =
  (* With a 3-entry cache, hit positions expose the MRU reordering. *)
  let ring = Telemetry.Ring.create 1024 in
  let cfg = Engine.default_config ~opt:Pipeline.all_on ~cache_size:3 () in
  let _, report, _ =
    run ~cfg ~sinks:[ Telemetry.Ring.sink ring ]
      "function f(x) { return (x * 3) | 0; }\n\
       var t = 0;\n\
       for (var k = 0; k < 30; k++) t = (t + f(1)) | 0;\n\
       t = (t + f(2)) | 0;\n\
       t = (t + f(3)) | 0;\n\
       t = (t + f(1)) | 0;\n\
       t = (t + f(3)) | 0;\n\
       t = (t + f(3)) | 0;\n\
       t = (t + f(2)) | 0;\n\
       print(t);"
  in
  Alcotest.(check int) "three specialized binaries" 3 (fn report "f").Engine.fr_compiles;
  Alcotest.(check bool) "no deopt" true (not (fn report "f").Engine.fr_deoptimized);
  let hits =
    List.filter_map
      (function Telemetry.Cache_hit { index; _ } -> Some index | _ -> None)
      (events_of ring "f")
  in
  (* Cache [3;2;1] after the fills; then f(1) hits slot 2 (-> [1;3;2]),
     f(3) slot 1 (-> [3;1;2]), f(3) slot 0, f(2) slot 2. *)
  let tail4 = List.filteri (fun i _ -> i >= List.length hits - 4) hits in
  Alcotest.(check (list int)) "MRU positions" [ 2; 1; 0; 2 ] tail4

let test_full_cache_blacklists () =
  (* The eviction-vs-blacklist boundary: a miss on a FULL cache is the §4
     deoptimization — discard everything, blacklist, go generic — not an
     eviction of the least-recent entry. *)
  let ring = Telemetry.Ring.create 1024 in
  let cfg = Engine.default_config ~opt:Pipeline.all_on ~cache_size:2 () in
  let engine, report, _ =
    run ~cfg ~sinks:[ Telemetry.Ring.sink ring ]
      "function f(x) { return (x * 3) | 0; }\n\
       var t = 0;\n\
       for (var k = 0; k < 30; k++) t = (t + f(1)) | 0;\n\
       t = (t + f(2)) | 0;\n\
       t = (t + f(3)) | 0;\n\
       t = (t + f(1)) | 0;\n\
       print(t);"
  in
  let f = fn report "f" in
  Alcotest.(check bool) "deoptimized" true f.Engine.fr_deoptimized;
  let c = Telemetry.counters (Engine.telemetry engine) in
  let get key = Telemetry.Counters.get c ~fid:f.Engine.fr_fid key in
  Alcotest.(check int) "blacklisted" 1 (get Telemetry.Key.blacklists);
  Alcotest.(check int) "one deopt" 1 (get Telemetry.Key.deopts);
  (* The miss on the full cache (the LAST miss: f(2)'s earlier miss just
     filled the free slot) deopts, blacklists, and compiles generic, in
     that order; the final f(1) is then served by the generic binary. *)
  let after_last_miss events =
    let rec go tail = function
      | [] -> ( match tail with Some t -> t | None -> Alcotest.fail "no cache miss recorded")
      | Telemetry.Cache_miss _ :: rest -> go (Some rest) rest
      | _ :: rest -> go tail rest
    in
    go None events
  in
  (match kinds (after_last_miss (events_of ring "f")) with
  | "deopt" :: "blacklist" :: "compile_start" :: "compile_end" :: rest ->
    Alcotest.(check (list string)) "generic binary serves the tail" [ "cache_hit" ] rest
  | ks -> Alcotest.fail ("unexpected tail: " ^ String.concat "," ks));
  match List.rev f.Engine.fr_sizes with
  | (specialized, _) :: _ -> Alcotest.(check bool) "last compile generic" false specialized
  | [] -> Alcotest.fail "expected compiles"

(* ------------------------------------------------------------------ *)
(* Counters as the source of truth                                     *)
(* ------------------------------------------------------------------ *)

let test_counters_agree_with_report () =
  let cfg = { (Engine.default_config ~opt:ps_only ()) with Engine.max_bailouts = 2 } in
  let engine, report, _ =
    run ~cfg (bailing_src "for (var k = 0; k < 6; k++) f(a);")
  in
  let c = Telemetry.counters (Engine.telemetry engine) in
  List.iter
    (fun (f : Engine.func_report) ->
      let get key = Telemetry.Counters.get c ~fid:f.Engine.fr_fid key in
      Alcotest.(check int) (f.Engine.fr_name ^ " calls") (get Telemetry.Key.calls)
        f.Engine.fr_calls;
      Alcotest.(check int) (f.Engine.fr_name ^ " compiles") (get Telemetry.Key.compiles)
        f.Engine.fr_compiles;
      Alcotest.(check int) (f.Engine.fr_name ^ " bailouts") (get Telemetry.Key.bailouts)
        f.Engine.fr_bailouts;
      Alcotest.(check bool) (f.Engine.fr_name ^ " specialized")
        (get Telemetry.Key.compiles_specialized > 0)
        f.Engine.fr_was_specialized;
      Alcotest.(check bool) (f.Engine.fr_name ^ " deoptimized")
        (get Telemetry.Key.deopts > 0) f.Engine.fr_deoptimized)
    report.Engine.functions;
  Alcotest.(check int) "global compiles = report compilations"
    (Telemetry.Counters.total c Telemetry.Key.compiles)
    report.Engine.compilations

let test_sinks_do_not_cost_cycles () =
  (* Attaching sinks must not change the model-cycle accounting the paper
     tables are built from. *)
  let src =
    "function f(s, i) { return s[i]; }\n\
     var a = [1, 2, 3, 4];\n\
     var t = 0;\n\
     for (var k = 0; k < 25; k++) t = (t + f(a, 1)) | 0;\n\
     for (var k = 0; k < 4; k++) f(a, 9);\n\
     print(t);"
  in
  let cfg = Engine.default_config ~opt:ps_only ~cache_size:2 () in
  let _, bare, out_bare = run ~cfg src in
  let ring = Telemetry.Ring.create 4096 in
  let _, traced, out_traced =
    run ~cfg ~sinks:[ Telemetry.Ring.sink ring; ignore ] src
  in
  Alcotest.(check string) "same output" out_bare out_traced;
  Alcotest.(check bool) "events actually flowed" true (Telemetry.Ring.length ring > 0);
  Alcotest.(check int) "same total cycles" bare.Engine.total_cycles traced.Engine.total_cycles;
  Alcotest.(check int) "same compile cycles" bare.Engine.compile_cycles
    traced.Engine.compile_cycles;
  Alcotest.(check int) "same native cycles" bare.Engine.native_cycles
    traced.Engine.native_cycles

let test_compile_end_carries_pass_deltas () =
  (* The per-pass attribution the bench harness aggregates: every
     Compile_end lists the configured passes in order, with coherent sizes. *)
  let ring = Telemetry.Ring.create 256 in
  let _, _, _ =
    run ~sinks:[ Telemetry.Ring.sink ring ]
      "function f(x) { return x + 1; } var t = 0;\n\
       for (var k = 0; k < 20; k++) t += f(7);\n\
       print(t);"
  in
  let ends =
    List.filter_map
      (function
        | Telemetry.Compile_end { passes; cycles; _ } -> Some (passes, cycles)
        | _ -> None)
      (Telemetry.Ring.contents ring)
  in
  Alcotest.(check bool) "at least one compile" true (ends <> []);
  List.iter
    (fun (passes, cycles) ->
      Alcotest.(check bool) "passes recorded" true (passes <> []);
      List.iter
        (fun (pd : Telemetry.pass_delta) ->
          Alcotest.(check bool) (pd.Telemetry.pd_pass ^ " sizes positive") true
            (pd.Telemetry.pd_before > 0 && pd.Telemetry.pd_after > 0))
        passes;
      Alcotest.(check bool) "cycles charged" true (cycles > 0))
    ends

let suites =
  [
    ( "telemetry.sinks",
      [
        Alcotest.test_case "ring buffer" `Quick test_ring_buffer;
        Alcotest.test_case "counted sink: exact overflow schedule (regression)" `Quick
          test_ring_counted_sink_overflow_schedule;
        Alcotest.test_case "json escaping" `Quick test_json_escaping;
        Alcotest.test_case "control-byte escapes" `Quick test_json_escape_controls;
        Alcotest.test_case "escape/unescape round-trip" `Quick test_json_roundtrip;
      ] );
    ( "telemetry.sequence",
      [
        Alcotest.test_case "compile/hit/bailout/deopt sequence" `Quick
          test_exact_event_sequence;
        Alcotest.test_case "strike limit is exact (regression)" `Quick
          test_strike_limit_is_exact;
        Alcotest.test_case "strikes are per binary (regression)" `Quick
          test_strikes_are_per_binary;
        Alcotest.test_case "strikes per binary under polyvariant cache" `Quick
          test_strikes_per_binary_polyvariant;
        Alcotest.test_case "entry bail counts as deopt (regression)" `Quick
          test_entry_bail_is_a_deopt;
      ] );
    ( "telemetry.cache",
      [
        Alcotest.test_case "LRU move-to-front" `Quick test_lru_move_to_front;
        Alcotest.test_case "full cache blacklists, not evicts" `Quick
          test_full_cache_blacklists;
      ] );
    ( "telemetry.counters",
      [
        Alcotest.test_case "counters agree with the report" `Quick
          test_counters_agree_with_report;
        Alcotest.test_case "sinks never cost cycles" `Quick test_sinks_do_not_cost_cycles;
        Alcotest.test_case "compile events carry pass deltas" `Quick
          test_compile_end_carries_pass_deltas;
      ] );
  ]
