(* Tests for the benchmark suites and the synthetic web workload: every
   member parses, runs identically under interpreter and JIT, and the web
   generator hits its calibration targets. *)

let quiet_run cfg src =
  let buf = Buffer.create 64 in
  Runtime.Builtins.with_print_hook
    (fun s -> Buffer.add_string buf s; Buffer.add_char buf '\n')
    (fun () ->
      let r = Engine.run_source cfg src in
      (r, Buffer.contents buf))

let test_members_run_and_agree () =
  List.iter
    (fun (suite : Suite.t) ->
      List.iter
        (fun (m : Suite.member) ->
          let _, reference = quiet_run Engine.interp_only m.Suite.m_source in
          Alcotest.(check bool)
            (m.Suite.m_name ^ " produces output")
            true
            (String.length reference > 0);
          List.iter
            (fun opt ->
              let _, out = quiet_run (Engine.default_config ~opt ()) m.Suite.m_source in
              Alcotest.(check string)
                (Printf.sprintf "%s under %s" m.Suite.m_name opt.Pipeline.name)
                reference out)
            [
              Pipeline.baseline; Pipeline.best; Pipeline.all_on;
              Pipeline.make ~ps:true ~cp:true ~li:true ~dce:true ~bce:true
                ~precise_alias:true ~overflow_elim:true ~loop_unroll:true "max";
            ])
        suite.Suite.members)
    Suites.all

let test_suites_shape () =
  Alcotest.(check int) "three suites" 3 (List.length Suites.all);
  Alcotest.(check int) "SunSpider members" 26 (List.length Suites.sunspider.Suite.members);
  Alcotest.(check int) "V8 members" 8 (List.length Suites.v8.Suite.members);
  Alcotest.(check int) "Kraken members" 14 (List.length Suites.kraken.Suite.members);
  Alcotest.(check bool) "find by name" true
    (Suites.find "sunspider 1.0" <> None && Suites.find "nope" = None)

let test_suites_exercise_the_jit () =
  (* Every member must actually compile something (otherwise it measures
     nothing relevant to the paper). *)
  List.iter
    (fun (suite : Suite.t) ->
      List.iter
        (fun (m : Suite.member) ->
          let r, _ = quiet_run (Engine.default_config ()) m.Suite.m_source in
          Alcotest.(check bool)
            (m.Suite.m_name ^ " compiles at least one function")
            true
            (r.Engine.compilations >= 1))
        suite.Suite.members)
    Suites.all

let test_web_session_calibration () =
  let stats = Web.session ~seed:42 ~nfunctions:23002 in
  let h = stats.Web.calls_histogram in
  let once = Support.Stats.Histogram.fraction h 1 in
  Alcotest.(check bool)
    (Printf.sprintf "called-once fraction %.4f within 2pp of 0.4888" once)
    true
    (Float.abs (once -. 0.4888) < 0.02);
  let a = stats.Web.argsets_histogram in
  let single = Support.Stats.Histogram.fraction a 1 in
  Alcotest.(check bool)
    (Printf.sprintf "single-argset fraction %.4f within 2pp of 0.5991" single)
    true
    (Float.abs (single -. 0.5991) < 0.02);
  Alcotest.(check int) "function count" 23002 stats.Web.nfunctions;
  (* Argument sets can never exceed calls. *)
  Alcotest.(check bool) "argsets <= calls heads" true
    (Support.Stats.Histogram.max_key a <= Support.Stats.Histogram.max_key h)

let test_web_session_deterministic () =
  let s1 = Web.session ~seed:9 ~nfunctions:2000 in
  let s2 = Web.session ~seed:9 ~nfunctions:2000 in
  Alcotest.(check (float 0.0)) "same fractions"
    (Support.Stats.Histogram.fraction s1.Web.calls_histogram 1)
    (Support.Stats.Histogram.fraction s2.Web.calls_histogram 1)

let test_web_type_mix_ordering () =
  let stats = Web.session ~seed:4 ~nfunctions:23002 in
  let frac name = List.assoc name stats.Web.type_fractions in
  (* The paper's headline facts: objects and strings dominate, ints rare. *)
  Alcotest.(check bool) "objects > ints" true (frac "object" > frac "int");
  Alcotest.(check bool) "strings > ints" true (frac "string" > frac "int");
  Alcotest.(check bool) "int share small" true (frac "int" < 0.15)

let test_synthetic_sites_run () =
  List.iter
    (fun profile ->
      let src = Web.synthetic_site ~seed:3 profile in
      let _, out_i = quiet_run Engine.interp_only src in
      let _, out_j = quiet_run (Engine.default_config ~opt:Pipeline.all_on ()) src in
      Alcotest.(check string) (profile.Web.site_name ^ " agrees") out_i out_j)
    [ Web.google; Web.facebook; Web.twitter ]

let test_twitter_more_varied_than_google () =
  let deopts profile =
    let src = Web.synthetic_site ~seed:3 profile in
    let r, _ = quiet_run (Engine.default_config ~opt:Pipeline.all_on ()) src in
    r.Engine.deoptimized_funcs
  in
  Alcotest.(check bool) "twitter profile deopts more" true
    (deopts Web.twitter > deopts Web.google)

let suites =
  [
    ( "workloads.suites",
      [
        Alcotest.test_case "shape" `Quick test_suites_shape;
        Alcotest.test_case "members agree across configs" `Slow test_members_run_and_agree;
        Alcotest.test_case "members exercise the JIT" `Slow test_suites_exercise_the_jit;
      ] );
    ( "workloads.web",
      [
        Alcotest.test_case "calibration" `Quick test_web_session_calibration;
        Alcotest.test_case "deterministic" `Quick test_web_session_deterministic;
        Alcotest.test_case "type mix" `Quick test_web_type_mix_ordering;
        Alcotest.test_case "synthetic sites run" `Slow test_synthetic_sites_run;
        Alcotest.test_case "variability profile" `Slow test_twitter_more_varied_than_google;
      ] );
  ]
